#include "common/bytes.h"

#include <stdexcept>

namespace keygraphs {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("from_hex: invalid hex character");
}

}  // namespace

std::string to_hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((hex_value(hex[i]) << 4) |
                                            hex_value(hex[i + 1])));
  }
  return out;
}

Bytes bytes_of(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

bool constant_time_equal(BytesView a, BytesView b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

Bytes concat(BytesView head, BytesView tail) {
  Bytes out;
  out.reserve(head.size() + tail.size());
  out.insert(out.end(), head.begin(), head.end());
  out.insert(out.end(), tail.begin(), tail.end());
  return out;
}

void secure_wipe(std::uint8_t* data, std::size_t size) noexcept {
  volatile std::uint8_t* p = data;
  for (std::size_t i = 0; i < size; ++i) p[i] = 0;
}

void secure_wipe(Bytes& data) noexcept { secure_wipe(data.data(), data.size()); }

}  // namespace keygraphs

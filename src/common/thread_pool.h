// Fixed-size worker pool for fork-join loops (the rekey seal phase).
//
// parallel_for(n, fn) runs fn(0) .. fn(n-1) across the pool's workers *and*
// the calling thread, returning once every index has completed. Several
// threads may call parallel_for concurrently — each call forms its own
// batch, workers drain batches in FIFO order, and the caller always
// participates, so a pool shared by many pipelined rekey operations can
// never deadlock: even if every worker is busy elsewhere, the caller drains
// its own batch alone.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace keygraphs {

class ThreadPool {
 public:
  /// Spawns `workers` threads (0 is valid: parallel_for then runs inline).
  explicit ThreadPool(std::size_t workers);

  /// Joins all workers. Must not race with in-flight parallel_for calls.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(i) for every i in [0, n), distributing indices dynamically
  /// over the workers plus the calling thread. The first exception thrown
  /// by `fn` is rethrown here after the whole batch has drained (remaining
  /// indices still run, so partial results stay index-consistent).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t workers() const noexcept {
    return threads_.size();
  }

 private:
  struct Batch;

  void worker_loop();
  /// Claims and runs indices of `batch` until none remain.
  static void work_on(Batch& batch);

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Batch>> batches_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace keygraphs

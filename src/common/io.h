// Little-endian binary reader/writer used by the rekey wire format and the
// UDP framing layer. All multi-byte integers on the wire are little-endian.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/error.h"

namespace keygraphs {

/// Appends little-endian primitives to an owned buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);

  /// Raw bytes, no length prefix.
  void raw(BytesView data);

  /// u32 length prefix followed by the bytes.
  void var_bytes(BytesView data);

  /// u32 length prefix followed by UTF-8 bytes.
  void var_string(std::string_view text);

  [[nodiscard]] const Bytes& data() const noexcept { return buf_; }
  [[nodiscard]] Bytes take() noexcept { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Consumes little-endian primitives from a view. Throws ParseError on
/// truncation so malformed network input can never read out of bounds.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();

  /// Exactly `n` raw bytes.
  Bytes raw(std::size_t n);

  /// u32 length-prefixed bytes.
  Bytes var_bytes();

  /// u32 length-prefixed UTF-8 string.
  std::string var_string();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool done() const noexcept { return remaining() == 0; }

  /// Throws ParseError unless the whole input was consumed.
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace keygraphs

// The client layer (paper Section 5: "a client layer ... implements
// join/leave protocols for all three rekeying strategies").
//
// A GroupClient holds its keyset (a map from k-node id to the newest key it
// knows for that node), verifies and decrypts incoming rekey messages, and
// tracks the statistics the paper reports per client: rekey messages and
// bytes received (Table 6) and the number of key changes per request
// (Figure 12). Decryption runs to a fixpoint because a group-oriented leave
// message may wrap a parent's new key under a child's new key carried in
// the same message.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/random.h"
#include "crypto/rsa.h"
#include "crypto/suite.h"
#include "rekey/codec.h"
#include "rekey/schedule_cache.h"

namespace keygraphs::client {

struct ClientConfig {
  UserId user = 0;
  crypto::CryptoSuite suite;
  /// The secure group this client participates in; rekey messages for
  /// other groups are ignored (a user in several groups runs one
  /// GroupClient per group — the Section 7 multi-group model).
  GroupId group = 1;
  /// The group key's k-node id (told to the client at admission).
  KeyId root = 0;
  /// Verify digests/signatures on incoming rekey messages. The large
  /// client-simulator benches turn this off, matching the paper's focus on
  /// server-side cost; the security tests turn it on.
  bool verify = true;
  /// Seed for this client's IV generator (0 = OS entropy).
  std::uint64_t rng_seed = 0;
};

/// Result of processing one rekey message.
struct RekeyOutcome {
  bool accepted = false;          // verified (or verification off) and fresh
  bool stale = false;             // epoch older than one already processed
  /// Set when a fresh, authentic rekey message carrying payload could not
  /// be decrypted at all: in normal operation every delivered rekey yields
  /// at least one decryption for a member, so this means the client missed
  /// an earlier rekey (lossy transport) and should ask the server for a
  /// keyset resync (MessageType::kResyncRequest).
  bool needs_resync = false;
  std::size_t keys_changed = 0;   // new or newer keys installed (Fig. 12)
  std::size_t keys_decrypted = 0; // decryption cost (Table 2(b) unit)
  std::size_t wire_size = 0;
};

/// Lifetime totals (Table 6 / Figure 12 aggregates).
struct ClientTotals {
  std::size_t rekeys_received = 0;
  std::size_t bytes_received = 0;
  std::size_t keys_changed = 0;
  std::size_t keys_decrypted = 0;
  std::size_t rejected = 0;  // failed verification
};

class GroupClient {
 public:
  /// `server_key` may be null when the server does not sign.
  GroupClient(ClientConfig config, const crypto::RsaPublicKey* server_key);

  /// Installs the individual key produced by the authentication exchange.
  void install_individual_key(SymmetricKey key);

  /// Installs a complete keyset snapshot at a given epoch. The experiment
  /// harness uses this to materialize a pre-built group (the paper measures
  /// only the 1000 churn requests, not the initial group construction).
  void admit_snapshot(std::vector<SymmetricKey> keys, std::uint64_t epoch);

  /// Verifies, decrypts and applies one sealed rekey message.
  RekeyOutcome handle_rekey(BytesView wire);

  /// Datagram entry point: decodes the envelope and dispatches kRekey;
  /// other types are ignored (returns an empty outcome).
  RekeyOutcome handle_datagram(BytesView datagram);

  /// Current group key, if admitted.
  [[nodiscard]] std::optional<SymmetricKey> group_key() const;

  /// Newest key known for `id`, or null.
  [[nodiscard]] const SymmetricKey* find_key(KeyId id) const;

  /// Ids of all held keys (the client's multicast subscriptions).
  [[nodiscard]] std::vector<KeyId> key_ids() const;

  [[nodiscard]] std::size_t key_count() const noexcept {
    return keys_.size();
  }
  [[nodiscard]] std::uint64_t last_epoch() const noexcept {
    return last_epoch_;
  }
  [[nodiscard]] const ClientTotals& totals() const noexcept {
    return totals_;
  }
  [[nodiscard]] UserId user() const noexcept { return config_.user; }

  /// Confidential application payload under the current group key
  /// (CBC + HMAC over the ciphertext). Throws if not admitted.
  [[nodiscard]] Bytes seal_application(BytesView payload);
  [[nodiscard]] Bytes open_application(BytesView sealed) const;

  /// Wipes all keys (a departing member forgets its state).
  void forget_keys();

 private:
  /// A client holds O(log n) keys, so a small cache covers them all.
  static constexpr std::size_t kScheduleCacheCapacity = 64;

  ClientConfig config_;
  rekey::RekeyOpener opener_;
  bool has_server_key_ = false;
  crypto::SecureRandom rng_;
  std::unordered_map<KeyId, SymmetricKey> keys_;
  /// Schedules of held keys, reused across the unwrap fixpoint and across
  /// messages (a path key unwraps many rekeys before it is itself rekeyed).
  rekey::ScheduleCache schedules_{kScheduleCacheCapacity,
                                  "client.schedule_cache"};
  Bytes unwrap_scratch_;  // decrypt_into target; wiped after each message
  std::uint64_t last_epoch_ = 0;
  ClientTotals totals_;
};

/// Application sealing as free functions, so a sender that is not a client
/// (e.g. the server pushing announcements) can use the same format.
Bytes seal_with_key(const crypto::CryptoSuite& suite, const SymmetricKey& key,
                    BytesView payload, crypto::SecureRandom& rng);
Bytes open_with_key(const crypto::CryptoSuite& suite, const SymmetricKey& key,
                    BytesView sealed);

}  // namespace keygraphs::client

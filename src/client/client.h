// The client layer (paper Section 5: "a client layer ... implements
// join/leave protocols for all three rekeying strategies").
//
// A GroupClient holds its keyset (a map from k-node id to the newest key it
// knows for that node), verifies and decrypts incoming rekey messages, and
// tracks the statistics the paper reports per client: rekey messages and
// bytes received (Table 6) and the number of key changes per request
// (Figure 12). Decryption runs to a fixpoint because a group-oriented leave
// message may wrap a parent's new key under a child's new key carried in
// the same message.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/random.h"
#include "crypto/rsa.h"
#include "crypto/suite.h"
#include "rekey/codec.h"
#include "rekey/schedule_cache.h"

namespace keygraphs::client {

/// Automatic loss-recovery policy: how a client that detects a missed
/// rekey escalates NACK (cheap server-side retransmit) -> repeat with
/// exponential backoff -> full keyset resync. Inert unless `clock_us` is
/// set; poll_recovery() then schedules requests on the injected clock, so
/// recovery tests run entirely wall-clock free.
struct RecoveryPolicy {
  /// Injected microsecond clock; unset leaves recovery passive (the legacy
  /// manual-resync flow).
  std::function<std::uint64_t()> clock_us;
  /// First retry delay; doubles per attempt up to max_backoff_us, plus a
  /// deterministic per-user jitter so a shared loss burst does not NACK in
  /// lockstep.
  std::uint64_t base_backoff_us = 50'000;
  std::uint64_t max_backoff_us = 1'600'000;
  /// NACK attempts before escalating to a full keyset resync.
  std::size_t max_nacks = 3;
  /// Out-of-order rekey messages parked while waiting for a gap to fill;
  /// lowest epochs are kept when full (they unblock the most).
  std::size_t reorder_capacity = 16;
  /// Authentication token for NACK/resync requests (the auth service's
  /// resync token — both are keyset-replay requests).
  Bytes token;
};

struct ClientConfig {
  UserId user = 0;
  crypto::CryptoSuite suite;
  /// The secure group this client participates in; rekey messages for
  /// other groups are ignored (a user in several groups runs one
  /// GroupClient per group — the Section 7 multi-group model).
  GroupId group = 1;
  /// The group key's k-node id (told to the client at admission).
  KeyId root = 0;
  /// Verify digests/signatures on incoming rekey messages. The large
  /// client-simulator benches turn this off, matching the paper's focus on
  /// server-side cost; the security tests turn it on.
  bool verify = true;
  /// Seed for this client's IV generator (0 = OS entropy).
  std::uint64_t rng_seed = 0;
  /// Loss-recovery escalation policy (see RecoveryPolicy).
  RecoveryPolicy recovery;
  /// Capacity of the unwrap ScheduleCache. A client holds O(log n) keys,
  /// so the default covers them all; deployments that fan one process over
  /// many GroupClients can shrink it. Spec key
  /// `client_schedule_cache_capacity` carries the deployment-wide value.
  std::size_t schedule_cache_capacity = 64;
};

/// Result of processing one rekey message.
struct RekeyOutcome {
  bool accepted = false;          // verified (or verification off) and fresh
  bool stale = false;             // epoch older than one already processed
  /// Set when a fresh, authentic rekey message carrying payload could not
  /// be decrypted at all: in normal operation every delivered rekey yields
  /// at least one decryption for a member, so this means the client missed
  /// an earlier rekey (lossy transport) and should ask the server for a
  /// keyset resync (MessageType::kResyncRequest).
  bool needs_resync = false;
  /// Epoch at or below one already applied: suppressed without touching
  /// the keyset (duplicate/replay protection — keys never roll back).
  bool duplicate = false;
  /// Fresh but out of order (epoch gap): parked in the reorder buffer and
  /// applied automatically once the gap fills.
  bool buffered = false;
  std::size_t keys_changed = 0;   // new or newer keys installed (Fig. 12)
  std::size_t keys_decrypted = 0; // decryption cost (Table 2(b) unit)
  std::size_t wire_size = 0;
  /// The server shed our request (kRetryLater) and told us how long to
  /// back off. The next recovery attempt is deferred by the hint without
  /// consuming a NACK from the budget — the server never saw the request,
  /// so it is a pure re-send, not an escalation.
  bool retry_later = false;
};

/// Where the client stands in the loss-recovery escalation.
enum class RecoveryState : std::uint8_t {
  kSynced = 0,             ///< applied epoch == newest seen; nothing owed
  kAwaitingRetransmit = 1, ///< gap detected; NACKing for cheap retransmits
  kAwaitingResync = 2,     ///< NACK budget spent; full resync requested
};

/// Lifetime recovery totals (mirrors the client.recovery.* counters).
struct RecoveryStats {
  std::size_t gaps = 0;        // epoch gaps detected
  std::size_t duplicates = 0;  // stale/replayed rekeys suppressed
  std::size_t buffered = 0;    // messages parked out of order
  std::size_t nacks_sent = 0;
  std::size_t resyncs_sent = 0;
  std::size_t completed = 0;    // recoveries that caught back up
  std::size_t retry_later = 0;  // kRetryLater sheds honored (overload)
};

/// Lifetime totals (Table 6 / Figure 12 aggregates).
struct ClientTotals {
  std::size_t rekeys_received = 0;
  std::size_t bytes_received = 0;
  std::size_t keys_changed = 0;
  std::size_t keys_decrypted = 0;
  std::size_t rejected = 0;  // failed verification
};

class GroupClient {
 public:
  /// `server_key` may be null when the server does not sign.
  GroupClient(ClientConfig config, const crypto::RsaPublicKey* server_key);

  /// Installs the individual key produced by the authentication exchange.
  void install_individual_key(SymmetricKey key);

  /// Installs a complete keyset snapshot at a given epoch. The experiment
  /// harness uses this to materialize a pre-built group (the paper measures
  /// only the 1000 churn requests, not the initial group construction).
  void admit_snapshot(std::vector<SymmetricKey> keys, std::uint64_t epoch);

  /// Verifies, decrypts and applies one sealed rekey message. Records the
  /// time into the client.apply_ns histogram and, when a RecoveryPolicy
  /// clock is configured, reports the new applied high-water mark to the
  /// global ConvergenceMonitor.
  RekeyOutcome handle_rekey(BytesView wire);

  /// Datagram entry point: decodes the envelope and dispatches kRekey;
  /// other types are ignored (returns an empty outcome). When the datagram
  /// carries the server's TraceExtension, the client binds that context
  /// around processing so its receive/apply spans land in this client's
  /// lane, correlated with the server's plan/seal/dispatch spans.
  RekeyOutcome handle_datagram(BytesView datagram);

  /// Current group key, if admitted.
  [[nodiscard]] std::optional<SymmetricKey> group_key() const;

  /// Newest key known for `id`, or null.
  [[nodiscard]] const SymmetricKey* find_key(KeyId id) const;

  /// Ids of all held keys (the client's multicast subscriptions).
  [[nodiscard]] std::vector<KeyId> key_ids() const;

  [[nodiscard]] std::size_t key_count() const noexcept {
    return keys_.size();
  }
  /// Newest epoch ever seen on an authentic message for this group.
  [[nodiscard]] std::uint64_t last_epoch() const noexcept {
    return last_epoch_;
  }
  /// Contiguous high-water mark: every epoch up to and including this one
  /// has been applied. Trails last_epoch() exactly while rekeys are
  /// missing — the difference is the NACK window the client asks for.
  [[nodiscard]] std::uint64_t applied_epoch() const noexcept {
    return applied_epoch_;
  }
  [[nodiscard]] RecoveryState recovery_state() const noexcept {
    return recovery_;
  }
  [[nodiscard]] const RecoveryStats& recovery_stats() const noexcept {
    return recovery_stats_;
  }
  /// Out-of-order messages currently parked in the reorder buffer.
  [[nodiscard]] std::size_t pending_count() const noexcept {
    return pending_.size();
  }

  /// Drives the recovery state machine: when recovery is owed and the
  /// policy clock says the backoff has elapsed, returns the next encoded
  /// request datagram to send to the server — kNackRequest while NACK
  /// attempts remain, kResyncRequest after escalation — and re-arms the
  /// (exponential, jittered) backoff. nullopt when synced, not yet due, or
  /// no clock is configured. The caller owns delivery; the machine is
  /// re-armed purely by clock reads, never by wall-clock sleeps.
  [[nodiscard]] std::optional<Bytes> poll_recovery();
  [[nodiscard]] const ClientTotals& totals() const noexcept {
    return totals_;
  }
  [[nodiscard]] UserId user() const noexcept { return config_.user; }

  /// Confidential application payload under the current group key
  /// (CBC + HMAC over the ciphertext). Throws if not admitted.
  [[nodiscard]] Bytes seal_application(BytesView payload);
  [[nodiscard]] Bytes open_application(BytesView sealed) const;

  /// Wipes all keys (a departing member forgets its state).
  void forget_keys();

 private:
  /// All blobs wrapped under this user's individual key: the shape of a
  /// welcome/resync keyset replay, which may jump the epoch forward
  /// non-contiguously (the server vouches for the whole keyset).
  [[nodiscard]] bool is_keyset_replay(const rekey::RekeyMessage& message) const;
  /// handle_rekey minus the instrumentation wrapper.
  RekeyOutcome process_rekey(BytesView wire);
  /// Fixpoint-decrypts `message` into the keyset and prunes obsolete ids,
  /// accumulating into `outcome`. Returns the keys decrypted from this
  /// message alone (the missed-rekey detector's signal).
  std::size_t apply_message(const rekey::RekeyMessage& message,
                            RekeyOutcome& outcome);
  /// Applies buffered messages while they extend applied_epoch_
  /// contiguously; discards ones a keyset replay has superseded.
  void drain_pending(RekeyOutcome& outcome);
  /// Parks an out-of-order message (bounded; lowest epochs win).
  void buffer_pending(const rekey::RekeyMessage& message);
  void enter_recovery();
  void maybe_complete_recovery();
  /// Applies a kRetryLater shed notice: defers the next recovery attempt
  /// by the server's retry-after hint and refunds the charged attempt.
  RekeyOutcome handle_retry_later(BytesView payload);

  ClientConfig config_;
  rekey::RekeyOpener opener_;
  bool has_server_key_ = false;
  crypto::SecureRandom rng_;
  std::unordered_map<KeyId, SymmetricKey> keys_;
  /// Schedules of held keys, reused across the unwrap fixpoint and across
  /// messages (a path key unwraps many rekeys before it is itself rekeyed).
  rekey::ScheduleCache schedules_{config_.schedule_cache_capacity,
                                  "client.schedule_cache"};
  Bytes unwrap_scratch_;  // decrypt_into target; wiped after each message
  std::uint64_t last_epoch_ = 0;
  std::uint64_t applied_epoch_ = 0;
  /// Reorder buffer: parsed out-of-order messages keyed by epoch, applied
  /// in order as gaps fill. Ordered map — drain walks ascending epochs.
  std::map<std::uint64_t, rekey::RekeyMessage> pending_;
  RecoveryState recovery_ = RecoveryState::kSynced;
  RecoveryStats recovery_stats_;
  std::size_t nacks_sent_ = 0;
  std::uint64_t attempt_ = 0;      // backoff exponent across the episode
  std::uint64_t next_attempt_us_ = 0;
  ClientTotals totals_;
};

/// Application sealing as free functions, so a sender that is not a client
/// (e.g. the server pushing announcements) can use the same format.
Bytes seal_with_key(const crypto::CryptoSuite& suite, const SymmetricKey& key,
                    BytesView payload, crypto::SecureRandom& rng);
Bytes open_with_key(const crypto::CryptoSuite& suite, const SymmetricKey& key,
                    BytesView sealed);

}  // namespace keygraphs::client

#include "client/client.h"

#include <algorithm>

#include "common/error.h"
#include "common/io.h"
#include "crypto/cbc.h"
#include "crypto/hmac.h"
#include "telemetry/convergence.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace keygraphs::client {

namespace {

struct RecoveryMetrics {
  telemetry::Counter& gaps;
  telemetry::Counter& duplicates;
  telemetry::Counter& buffered;
  telemetry::Counter& nacks;
  telemetry::Counter& resyncs;
  telemetry::Counter& completed;
  telemetry::Counter& retry_later;

  static RecoveryMetrics& get() {
    auto& registry = telemetry::Registry::global();
    static RecoveryMetrics* metrics = new RecoveryMetrics{
        registry.counter("client.recovery.gaps"),
        registry.counter("client.recovery.duplicates"),
        registry.counter("client.recovery.buffered"),
        registry.counter("client.recovery.nacks"),
        registry.counter("client.recovery.resyncs"),
        registry.counter("client.recovery.completed"),
        registry.counter("client.recovery.retry_later"),
    };
    return *metrics;
  }
};

/// splitmix64 finalizer: the deterministic per-(user, attempt) jitter
/// source — no global RNG, so two same-seed runs back off identically.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

GroupClient::GroupClient(ClientConfig config,
                         const crypto::RsaPublicKey* server_key)
    : config_(std::move(config)),
      opener_(server_key),
      has_server_key_(server_key != nullptr),
      rng_(config_.rng_seed == 0 ? crypto::SecureRandom()
                                 : crypto::SecureRandom(config_.rng_seed)) {}

void GroupClient::install_individual_key(SymmetricKey key) {
  keys_[key.id] = std::move(key);
}

void GroupClient::admit_snapshot(std::vector<SymmetricKey> keys,
                                 std::uint64_t epoch) {
  for (SymmetricKey& key : keys) keys_[key.id] = std::move(key);
  last_epoch_ = std::max(last_epoch_, epoch);
  applied_epoch_ = std::max(applied_epoch_, epoch);
}

bool GroupClient::is_keyset_replay(const rekey::RekeyMessage& message) const {
  if (message.blobs.empty()) return false;
  const KeyId own = individual_key_id(config_.user);
  for (const rekey::KeyBlob& blob : message.blobs) {
    if (blob.wrap.id != own) return false;
  }
  return true;
}

std::size_t GroupClient::apply_message(const rekey::RekeyMessage& message,
                                       RekeyOutcome& outcome) {
  const std::size_t key_size = config_.suite.key_size();
  std::size_t decrypted = 0;

  // Decrypt to a fixpoint: a blob may be wrapped under a key delivered by
  // another blob of the same message (group-oriented leave chains).
  std::vector<bool> consumed(message.blobs.size(), false);
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < message.blobs.size(); ++i) {
      if (consumed[i]) continue;
      const rekey::KeyBlob& blob = message.blobs[i];
      auto held = keys_.find(blob.wrap.id);
      if (held == keys_.end() ||
          held->second.version != blob.wrap.version) {
        continue;  // not wrapped for us (or not yet unlockable)
      }
      consumed[i] = true;
      progress = true;

      // The wrapping key's schedule is cached: a path key unwraps many
      // rekey messages before it is itself replaced. decrypt_into writes
      // into the reusable scratch buffer — no allocation per blob.
      const crypto::CbcCipher cbc(schedules_.get(
          config_.suite.cipher, held->second.ref(), held->second.secret));
      if (unwrap_scratch_.size() < blob.ciphertext.size()) {
        unwrap_scratch_.resize(blob.ciphertext.size());
      }
      std::size_t plain_size = 0;
      try {
        plain_size = cbc.decrypt_into(blob.ciphertext, unwrap_scratch_.data());
      } catch (const CryptoError&) {
        continue;  // corrupt blob (scratch wiped); counters untouched
      }
      if (plain_size != blob.targets.size() * key_size) {
        secure_wipe(unwrap_scratch_.data(), plain_size);
        continue;
      }
      decrypted += blob.targets.size();
      for (std::size_t t = 0; t < blob.targets.size(); ++t) {
        const KeyRef& target = blob.targets[t];
        const std::uint8_t* secret = unwrap_scratch_.data() + t * key_size;
        auto existing = keys_.find(target.id);
        if (existing == keys_.end() ||
            existing->second.version < target.version) {
          keys_[target.id] = SymmetricKey{target.id, target.version,
                                          Bytes(secret, secret + key_size)};
          schedules_.invalidate_older(target);
          ++outcome.keys_changed;
        }
      }
      secure_wipe(unwrap_scratch_.data(), plain_size);
    }
  }

  for (KeyId id : message.obsolete) {
    keys_.erase(id);
    schedules_.invalidate_id(id);
  }

  outcome.keys_decrypted += decrypted;
  return decrypted;
}

void GroupClient::buffer_pending(const rekey::RekeyMessage& message) {
  const std::size_t capacity = std::max<std::size_t>(
      config_.recovery.reorder_capacity, 1);
  if (pending_.contains(message.epoch)) return;  // duplicate of a parked one
  if (pending_.size() >= capacity) {
    // Keep the lowest epochs: they are the ones a gap fill unblocks first;
    // anything evicted is re-fetchable through the NACK path anyway.
    auto highest = std::prev(pending_.end());
    if (message.epoch >= highest->first) return;
    pending_.erase(highest);
  }
  pending_.emplace(message.epoch, message);
  ++recovery_stats_.buffered;
  if (telemetry::enabled()) RecoveryMetrics::get().buffered.add(1);
}

void GroupClient::drain_pending(RekeyOutcome& outcome) {
  while (!pending_.empty()) {
    auto it = pending_.begin();
    if (it->first <= applied_epoch_) {
      pending_.erase(it);  // superseded by a keyset replay
      continue;
    }
    if (it->first != applied_epoch_ + 1) break;  // gap still open
    const rekey::RekeyMessage message = std::move(it->second);
    pending_.erase(it);
    const std::size_t decrypted = apply_message(message, outcome);
    if (!message.blobs.empty() && decrypted == 0) {
      // Parked copy was undecryptable (e.g. corrupted in flight before it
      // was buffered): stay un-advanced and let recovery re-fetch it.
      outcome.needs_resync = true;
      enter_recovery();
      return;
    }
    applied_epoch_ = message.epoch;
  }
}

void GroupClient::enter_recovery() {
  if (recovery_ != RecoveryState::kSynced) return;
  recovery_ = RecoveryState::kAwaitingRetransmit;
  nacks_sent_ = 0;
  attempt_ = 0;
  // First request is due immediately; backoff applies between retries.
  next_attempt_us_ =
      config_.recovery.clock_us ? config_.recovery.clock_us() : 0;
}

void GroupClient::maybe_complete_recovery() {
  if (recovery_ == RecoveryState::kSynced) return;
  if (applied_epoch_ < last_epoch_ || !pending_.empty()) return;
  recovery_ = RecoveryState::kSynced;
  nacks_sent_ = 0;
  attempt_ = 0;
  ++recovery_stats_.completed;
  if (telemetry::enabled()) RecoveryMetrics::get().completed.add(1);
}

RekeyOutcome GroupClient::handle_rekey(BytesView wire) {
  if (!telemetry::enabled()) return process_rekey(wire);
  static auto& apply_ns = telemetry::Registry::global().histogram(
      "client.apply_ns",
      "Verify, decrypt and apply time per received rekey message");
  const std::uint64_t applied_before = applied_epoch_;
  RekeyOutcome outcome;
  {
    // A traced delivery gets a real span (ring + histogram); an untraced
    // one records the histogram alone, keeping the span ring free of
    // per-delivery churn in the large client simulations.
    std::optional<telemetry::ScopedSpan> span;
    std::uint64_t start_ns = 0;
    if (telemetry::current_trace().active()) {
      span.emplace("client.apply", &apply_ns);
    } else {
      start_ns = telemetry::steady_now_ns();
    }
    outcome = process_rekey(wire);
    if (!span.has_value()) {
      apply_ns.record(telemetry::steady_now_ns() - start_ns);
    }
  }
  if (applied_epoch_ > applied_before && config_.recovery.clock_us) {
    telemetry::ConvergenceMonitor::global().note_apply(
        config_.user, applied_epoch_, config_.recovery.clock_us() * 1000);
  }
  return outcome;
}

RekeyOutcome GroupClient::process_rekey(BytesView wire) {
  RekeyOutcome outcome;
  outcome.wire_size = wire.size();
  ++totals_.rekeys_received;
  totals_.bytes_received += wire.size();

  rekey::OpenedRekey opened;
  try {
    opened = opener_.open(wire, config_.verify);
  } catch (const ParseError&) {
    ++totals_.rejected;  // mangled on the wire; unusable regardless of auth
    return outcome;
  }
  // A verifying client that knows the server's key must see a signature:
  // accepting unsigned (or merely digested) messages would let anyone on
  // the multicast tree downgrade authentication away.
  const bool signature_required = config_.verify && has_server_key_;
  const bool properly_signed =
      opened.auth == rekey::AuthKind::kSignature ||
      opened.auth == rekey::AuthKind::kBatchSignature;
  if ((config_.verify && !opened.verified) ||
      (signature_required && !properly_signed)) {
    ++totals_.rejected;
    return outcome;  // unauthenticated: apply nothing
  }
  const rekey::RekeyMessage& message = opened.message;
  if (message.group != config_.group) {
    return outcome;  // another group's rekeying; not ours to apply
  }

  // A keyset replay (welcome or resync: everything wrapped under our own
  // individual key) carries the complete current keyset, so it may jump
  // applied_epoch_ forward over any gap. An old replay is an attacker (or
  // network) echo: suppressed like any other stale message.
  if (is_keyset_replay(message)) {
    if (message.epoch < applied_epoch_) {
      outcome.stale = true;
      outcome.duplicate = true;
      ++recovery_stats_.duplicates;
      if (telemetry::enabled()) RecoveryMetrics::get().duplicates.add(1);
      return outcome;
    }
    outcome.accepted = true;
    apply_message(message, outcome);
    applied_epoch_ = std::max(applied_epoch_, message.epoch);
    last_epoch_ = std::max(last_epoch_, message.epoch);
    drain_pending(outcome);
    maybe_complete_recovery();
    totals_.keys_changed += outcome.keys_changed;
    totals_.keys_decrypted += outcome.keys_decrypted;
    return outcome;
  }

  if (message.epoch <= applied_epoch_) {
    // Duplicate or reordered echo of an epoch already applied: suppressed
    // without touching the keyset (no rollback under any strategy).
    outcome.stale = true;
    outcome.duplicate = true;
    ++recovery_stats_.duplicates;
    if (telemetry::enabled()) RecoveryMetrics::get().duplicates.add(1);
    return outcome;
  }
  last_epoch_ = std::max(last_epoch_, message.epoch);
  outcome.accepted = true;

  if (message.epoch > applied_epoch_ + 1) {
    // Epoch gap: at least one rekey is missing (every member gets exactly
    // one message per epoch). Park this one and ask for the gap.
    buffer_pending(message);
    outcome.buffered = true;
    outcome.needs_resync = true;
    ++recovery_stats_.gaps;
    if (telemetry::enabled()) RecoveryMetrics::get().gaps.add(1);
    enter_recovery();
    return outcome;
  }

  const std::size_t decrypted = apply_message(message, outcome);
  if (!message.blobs.empty() && decrypted == 0) {
    // Fresh, authentic, contiguous — yet nothing decrypted. Either our
    // keyset diverged or the payload was corrupted in flight; recovery
    // re-fetches the pristine datagram (and escalates to resync if that
    // keeps failing). applied_epoch_ stays put so the re-fetch matches.
    outcome.needs_resync = true;
    enter_recovery();
  } else {
    applied_epoch_ = message.epoch;
    drain_pending(outcome);
    maybe_complete_recovery();
  }
  totals_.keys_changed += outcome.keys_changed;
  totals_.keys_decrypted += outcome.keys_decrypted;
  return outcome;
}

RekeyOutcome GroupClient::handle_datagram(BytesView datagram) {
  rekey::Datagram decoded;
  try {
    decoded = rekey::Datagram::decode(datagram);
  } catch (const ParseError&) {
    ++totals_.rejected;  // truncated/mangled envelope
    return RekeyOutcome{};
  }
  if (decoded.type == rekey::MessageType::kRetryLater) {
    return handle_retry_later(decoded.payload);
  }
  if (decoded.type != rekey::MessageType::kRekey) return RekeyOutcome{};
  telemetry::TraceContext context;
  if (decoded.trace.has_value()) {
    context = telemetry::TraceContext{decoded.trace->trace_id,
                                      decoded.trace->epoch,
                                      decoded.trace->op_kind};
  }
  const telemetry::TraceBinding traced(
      context, telemetry::client_process(config_.user));
  std::optional<telemetry::ScopedSpan> receive_span;
  if (context.active() && telemetry::enabled()) {
    receive_span.emplace("client.receive");
  }
  return handle_rekey(decoded.payload);
}

RekeyOutcome GroupClient::handle_retry_later(BytesView payload) {
  RekeyOutcome outcome;
  std::uint64_t hint_us = 0;
  try {
    ByteReader reader(payload);
    hint_us = reader.u64();
    reader.expect_done();
  } catch (const ParseError&) {
    ++totals_.rejected;  // mangled shed notice: ignore, backoff re-arms us
    return outcome;
  }
  outcome.retry_later = true;
  ++recovery_stats_.retry_later;
  if (telemetry::enabled()) RecoveryMetrics::get().retry_later.add(1);
  // The shed request was never processed, so the re-send after the hint is
  // a plain retry, not an escalation: refund the NACK (and the backoff
  // exponent) that poll_recovery charged when it emitted the request. A
  // shed join/resync issued outside poll_recovery leaves both at zero.
  if (recovery_ != RecoveryState::kSynced) {
    if (nacks_sent_ > 0) --nacks_sent_;
    if (attempt_ > 0) --attempt_;
  }
  // Honor the server's hint: never retry earlier than it asked, but keep
  // any later deadline our own backoff already scheduled.
  const std::uint64_t now =
      config_.recovery.clock_us ? config_.recovery.clock_us() : 0;
  next_attempt_us_ = std::max(next_attempt_us_, now + hint_us);
  return outcome;
}

std::optional<Bytes> GroupClient::poll_recovery() {
  if (recovery_ == RecoveryState::kSynced) return std::nullopt;
  const RecoveryPolicy& policy = config_.recovery;
  if (!policy.clock_us) return std::nullopt;  // passive (manual recovery)
  const std::uint64_t now = policy.clock_us();
  if (now < next_attempt_us_) return std::nullopt;

  // One recovery request is being emitted: record it in this client's lane
  // (untraced — the datagram that triggered recovery is long gone).
  const telemetry::TraceBinding traced(
      telemetry::TraceContext{}, telemetry::client_process(config_.user));
  std::optional<telemetry::ScopedSpan> recovery_span;
  if (telemetry::enabled()) recovery_span.emplace("client.recovery");

  // Re-arm: exponential backoff capped at max, plus a deterministic
  // per-user jitter in [0, delay/4] so simultaneous victims spread out.
  const std::uint64_t shift = std::min<std::uint64_t>(attempt_, 20);
  std::uint64_t delay =
      std::min(policy.base_backoff_us << shift, policy.max_backoff_us);
  delay = std::max<std::uint64_t>(delay, 1);
  delay += mix64(config_.user * 0x9e3779b97f4a7c15ull + attempt_) %
           (delay / 4 + 1);
  next_attempt_us_ = now + delay;
  ++attempt_;

  ByteWriter writer;
  writer.u64(config_.user);
  writer.var_bytes(policy.token);
  if (recovery_ == RecoveryState::kAwaitingRetransmit &&
      nacks_sent_ < policy.max_nacks) {
    ++nacks_sent_;
    ++recovery_stats_.nacks_sent;
    if (telemetry::enabled()) RecoveryMetrics::get().nacks.add(1);
    writer.u64(applied_epoch_);
    return rekey::Datagram{rekey::MessageType::kNackRequest, writer.take()}
        .encode();
  }
  // NACK budget spent (or already escalated): full keyset resync.
  recovery_ = RecoveryState::kAwaitingResync;
  ++recovery_stats_.resyncs_sent;
  if (telemetry::enabled()) RecoveryMetrics::get().resyncs.add(1);
  return rekey::Datagram{rekey::MessageType::kResyncRequest, writer.take()}
      .encode();
}

std::optional<SymmetricKey> GroupClient::group_key() const {
  auto it = keys_.find(config_.root);
  if (it == keys_.end()) return std::nullopt;
  return it->second;
}

const SymmetricKey* GroupClient::find_key(KeyId id) const {
  auto it = keys_.find(id);
  return it == keys_.end() ? nullptr : &it->second;
}

std::vector<KeyId> GroupClient::key_ids() const {
  std::vector<KeyId> out;
  out.reserve(keys_.size());
  for (const auto& [id, key] : keys_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

Bytes GroupClient::seal_application(BytesView payload) {
  const std::optional<SymmetricKey> key = group_key();
  if (!key.has_value()) {
    throw ProtocolError("client: not admitted (no group key)");
  }
  return seal_with_key(config_.suite, *key, payload, rng_);
}

Bytes GroupClient::open_application(BytesView sealed) const {
  const std::optional<SymmetricKey> key = group_key();
  if (!key.has_value()) {
    throw ProtocolError("client: not admitted (no group key)");
  }
  return open_with_key(config_.suite, *key, sealed);
}

void GroupClient::forget_keys() {
  for (auto& [id, key] : keys_) secure_wipe(key.secret);
  keys_.clear();
  schedules_.clear();
  secure_wipe(unwrap_scratch_);
  pending_.clear();
  recovery_ = RecoveryState::kSynced;  // a departed member owes nothing
  nacks_sent_ = 0;
  attempt_ = 0;
}

Bytes seal_with_key(const crypto::CryptoSuite& suite, const SymmetricKey& key,
                    BytesView payload, crypto::SecureRandom& rng) {
  const crypto::CbcCipher cbc(crypto::make_cipher(suite.cipher, key.secret));
  Bytes sealed = cbc.encrypt(payload, rng);
  // Encrypt-then-MAC so tampered ciphertexts are rejected before decryption.
  const crypto::Hmac hmac(suite.signing_digest(), key.secret);
  const Bytes tag = hmac.mac(sealed);
  sealed.insert(sealed.end(), tag.begin(), tag.end());
  return sealed;
}

Bytes open_with_key(const crypto::CryptoSuite& suite, const SymmetricKey& key,
                    BytesView sealed) {
  const crypto::Hmac hmac(suite.signing_digest(), key.secret);
  const std::size_t tag_size = hmac.tag_size();
  if (sealed.size() < tag_size) {
    throw CryptoError("application payload: truncated");
  }
  const BytesView body = sealed.subspan(0, sealed.size() - tag_size);
  const BytesView tag = sealed.subspan(sealed.size() - tag_size);
  if (!hmac.verify(body, tag)) {
    throw CryptoError("application payload: bad MAC");
  }
  const crypto::CbcCipher cbc(crypto::make_cipher(suite.cipher, key.secret));
  return cbc.decrypt(body);
}

}  // namespace keygraphs::client

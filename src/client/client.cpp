#include "client/client.h"

#include <algorithm>

#include "common/error.h"
#include "crypto/cbc.h"
#include "crypto/hmac.h"

namespace keygraphs::client {

GroupClient::GroupClient(ClientConfig config,
                         const crypto::RsaPublicKey* server_key)
    : config_(std::move(config)),
      opener_(server_key),
      has_server_key_(server_key != nullptr),
      rng_(config_.rng_seed == 0 ? crypto::SecureRandom()
                                 : crypto::SecureRandom(config_.rng_seed)) {}

void GroupClient::install_individual_key(SymmetricKey key) {
  keys_[key.id] = std::move(key);
}

void GroupClient::admit_snapshot(std::vector<SymmetricKey> keys,
                                 std::uint64_t epoch) {
  for (SymmetricKey& key : keys) keys_[key.id] = std::move(key);
  last_epoch_ = std::max(last_epoch_, epoch);
}

RekeyOutcome GroupClient::handle_rekey(BytesView wire) {
  RekeyOutcome outcome;
  outcome.wire_size = wire.size();
  ++totals_.rekeys_received;
  totals_.bytes_received += wire.size();

  const rekey::OpenedRekey opened = opener_.open(wire, config_.verify);
  // A verifying client that knows the server's key must see a signature:
  // accepting unsigned (or merely digested) messages would let anyone on
  // the multicast tree downgrade authentication away.
  const bool signature_required = config_.verify && has_server_key_;
  const bool properly_signed =
      opened.auth == rekey::AuthKind::kSignature ||
      opened.auth == rekey::AuthKind::kBatchSignature;
  if ((config_.verify && !opened.verified) ||
      (signature_required && !properly_signed)) {
    ++totals_.rejected;
    return outcome;  // unauthenticated: apply nothing
  }
  const rekey::RekeyMessage& message = opened.message;
  if (message.group != config_.group) {
    return outcome;  // another group's rekeying; not ours to apply
  }
  if (message.epoch < last_epoch_) {
    outcome.stale = true;  // replayed message from an older operation
    return outcome;
  }
  last_epoch_ = std::max(last_epoch_, message.epoch);
  outcome.accepted = true;

  const std::size_t key_size = config_.suite.key_size();

  // Decrypt to a fixpoint: a blob may be wrapped under a key delivered by
  // another blob of the same message (group-oriented leave chains).
  std::vector<bool> consumed(message.blobs.size(), false);
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < message.blobs.size(); ++i) {
      if (consumed[i]) continue;
      const rekey::KeyBlob& blob = message.blobs[i];
      auto held = keys_.find(blob.wrap.id);
      if (held == keys_.end() ||
          held->second.version != blob.wrap.version) {
        continue;  // not wrapped for us (or not yet unlockable)
      }
      consumed[i] = true;
      progress = true;

      // The wrapping key's schedule is cached: a path key unwraps many
      // rekey messages before it is itself replaced. decrypt_into writes
      // into the reusable scratch buffer — no allocation per blob.
      const crypto::CbcCipher cbc(schedules_.get(
          config_.suite.cipher, held->second.ref(), held->second.secret));
      if (unwrap_scratch_.size() < blob.ciphertext.size()) {
        unwrap_scratch_.resize(blob.ciphertext.size());
      }
      std::size_t plain_size = 0;
      try {
        plain_size = cbc.decrypt_into(blob.ciphertext, unwrap_scratch_.data());
      } catch (const CryptoError&) {
        continue;  // corrupt blob (scratch wiped); counters untouched
      }
      if (plain_size != blob.targets.size() * key_size) {
        secure_wipe(unwrap_scratch_.data(), plain_size);
        continue;
      }
      outcome.keys_decrypted += blob.targets.size();
      for (std::size_t t = 0; t < blob.targets.size(); ++t) {
        const KeyRef& target = blob.targets[t];
        const std::uint8_t* secret = unwrap_scratch_.data() + t * key_size;
        auto existing = keys_.find(target.id);
        if (existing == keys_.end() ||
            existing->second.version < target.version) {
          keys_[target.id] = SymmetricKey{target.id, target.version,
                                          Bytes(secret, secret + key_size)};
          schedules_.invalidate_older(target);
          ++outcome.keys_changed;
        }
      }
      secure_wipe(unwrap_scratch_.data(), plain_size);
    }
  }

  for (KeyId id : message.obsolete) {
    keys_.erase(id);
    schedules_.invalidate_id(id);
  }

  outcome.needs_resync =
      !message.blobs.empty() && outcome.keys_decrypted == 0;
  totals_.keys_changed += outcome.keys_changed;
  totals_.keys_decrypted += outcome.keys_decrypted;
  return outcome;
}

RekeyOutcome GroupClient::handle_datagram(BytesView datagram) {
  const rekey::Datagram decoded = rekey::Datagram::decode(datagram);
  if (decoded.type != rekey::MessageType::kRekey) return RekeyOutcome{};
  return handle_rekey(decoded.payload);
}

std::optional<SymmetricKey> GroupClient::group_key() const {
  auto it = keys_.find(config_.root);
  if (it == keys_.end()) return std::nullopt;
  return it->second;
}

const SymmetricKey* GroupClient::find_key(KeyId id) const {
  auto it = keys_.find(id);
  return it == keys_.end() ? nullptr : &it->second;
}

std::vector<KeyId> GroupClient::key_ids() const {
  std::vector<KeyId> out;
  out.reserve(keys_.size());
  for (const auto& [id, key] : keys_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

Bytes GroupClient::seal_application(BytesView payload) {
  const std::optional<SymmetricKey> key = group_key();
  if (!key.has_value()) {
    throw ProtocolError("client: not admitted (no group key)");
  }
  return seal_with_key(config_.suite, *key, payload, rng_);
}

Bytes GroupClient::open_application(BytesView sealed) const {
  const std::optional<SymmetricKey> key = group_key();
  if (!key.has_value()) {
    throw ProtocolError("client: not admitted (no group key)");
  }
  return open_with_key(config_.suite, *key, sealed);
}

void GroupClient::forget_keys() {
  for (auto& [id, key] : keys_) secure_wipe(key.secret);
  keys_.clear();
  schedules_.clear();
  secure_wipe(unwrap_scratch_);
}

Bytes seal_with_key(const crypto::CryptoSuite& suite, const SymmetricKey& key,
                    BytesView payload, crypto::SecureRandom& rng) {
  const crypto::CbcCipher cbc(crypto::make_cipher(suite.cipher, key.secret));
  Bytes sealed = cbc.encrypt(payload, rng);
  // Encrypt-then-MAC so tampered ciphertexts are rejected before decryption.
  const crypto::Hmac hmac(suite.signing_digest(), key.secret);
  const Bytes tag = hmac.mac(sealed);
  sealed.insert(sealed.end(), tag.begin(), tag.end());
  return sealed;
}

Bytes open_with_key(const crypto::CryptoSuite& suite, const SymmetricKey& key,
                    BytesView sealed) {
  const crypto::Hmac hmac(suite.signing_digest(), key.secret);
  const std::size_t tag_size = hmac.tag_size();
  if (sealed.size() < tag_size) {
    throw CryptoError("application payload: truncated");
  }
  const BytesView body = sealed.subspan(0, sealed.size() - tag_size);
  const BytesView tag = sealed.subspan(sealed.size() - tag_size);
  if (!hmac.verify(body, tag)) {
    throw CryptoError("application payload: bad MAC");
  }
  const crypto::CbcCipher cbc(crypto::make_cipher(suite.cipher, key.secret));
  return cbc.decrypt(body);
}

}  // namespace keygraphs::client

// Exporters: render a Registry (and optionally the Tracer ring) for
// machines and humans.
//
//   - render_jsonl: one JSON object per metric per line — the format the
//     benches append to BENCH_*.json files and keyserverd streams when
//     `telemetry = json`.
//   - render_prometheus: the Prometheus text exposition format (counters,
//     gauges, histograms with cumulative `_bucket{le=...}` series) for
//     `telemetry = prom`; scrape-ready when piped to an HTTP responder.
//   - render_dump: an aligned human table (count, mean, p50/p90/p99, max)
//     for SIGUSR1 dumps and shutdown summaries.
//   - render_trace_jsonl: the span ring as JSON lines, oldest first.
//   - render_chrome_trace: the span ring in Chrome Trace Event Format
//     (one JSON object, loadable in chrome://tracing and Perfetto), with
//     one lane per process (server + each traced client) and flow arrows
//     connecting a rekey's server-side dispatch span to the first client
//     span that processed the delivery.
//
// All renderers take a consistent snapshot per metric (atomic reads), not
// across metrics — fine for monitoring, by design not a transaction.
#pragma once

#include <string>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace keygraphs::telemetry {

[[nodiscard]] std::string render_jsonl(
    const Registry& registry = Registry::global());

[[nodiscard]] std::string render_prometheus(
    const Registry& registry = Registry::global());

[[nodiscard]] std::string render_dump(
    const Registry& registry = Registry::global());

[[nodiscard]] std::string render_trace_jsonl(
    const Tracer& tracer = Tracer::global());

[[nodiscard]] std::string render_chrome_trace(
    const Tracer& tracer = Tracer::global());

}  // namespace keygraphs::telemetry

#include "telemetry/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <string_view>
#include <utility>

namespace keygraphs::telemetry {

namespace {

void append_format(std::string& out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void append_format(std::string& out, const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  const int written = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (written > 0) {
    out.append(buffer, std::min(static_cast<std::size_t>(written),
                                sizeof(buffer) - 1));
  }
}

/// Metric names use '.', Prometheus wants [a-zA-Z0-9_:]. Everything is
/// prefixed kg_ to namespace the exposition (the prefix also keeps names
/// that start with a digit legal).
std::string prometheus_name(const std::string& name) {
  std::string out = "kg_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// HELP text escaping per the exposition format: backslash and newline
/// only (label values would additionally escape '"', but all labels here
/// are numeric).
std::string prometheus_help_text(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void append_prometheus_header(std::string& out, const Registry& registry,
                              const std::string& name,
                              const std::string& prom, const char* type) {
  const std::string help = registry.help(name);
  if (!help.empty()) {
    out += "# HELP " + prom + " " + prometheus_help_text(help) + "\n";
  }
  append_format(out, "# TYPE %s %s\n", prom.c_str(), type);
}

}  // namespace

std::string render_jsonl(const Registry& registry) {
  std::string out;
  for (const auto& [name, counter] : registry.counters()) {
    append_format(out,
                  "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%" PRIu64
                  "}\n",
                  name.c_str(), counter->value());
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    append_format(out,
                  "{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%" PRId64
                  "}\n",
                  name.c_str(), gauge->value());
  }
  for (const auto& [name, histogram] : registry.histograms()) {
    append_format(
        out,
        "{\"type\":\"histogram\",\"name\":\"%s\",\"count\":%" PRIu64
        ",\"sum\":%" PRIu64 ",\"min\":%" PRIu64 ",\"max\":%" PRIu64
        ",\"mean\":%.3f,\"p50\":%" PRIu64 ",\"p90\":%" PRIu64
        ",\"p99\":%" PRIu64 "}\n",
        name.c_str(), histogram->count(), histogram->sum(),
        histogram->min(), histogram->max(), histogram->mean(),
        histogram->p50(), histogram->p90(), histogram->p99());
  }
  return out;
}

std::string render_prometheus(const Registry& registry) {
  std::string out;
  for (const auto& [name, counter] : registry.counters()) {
    const std::string prom = prometheus_name(name);
    append_prometheus_header(out, registry, name, prom, "counter");
    append_format(out, "%s %" PRIu64 "\n", prom.c_str(), counter->value());
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    const std::string prom = prometheus_name(name);
    append_prometheus_header(out, registry, name, prom, "gauge");
    append_format(out, "%s %" PRId64 "\n", prom.c_str(), gauge->value());
  }
  for (const auto& [name, histogram] : registry.histograms()) {
    const std::string prom = prometheus_name(name);
    append_prometheus_header(out, registry, name, prom, "histogram");
    std::uint64_t cumulative = 0;
    for (const Histogram::Bucket& bucket : histogram->buckets()) {
      cumulative += bucket.count;
      append_format(out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                    prom.c_str(), bucket.upper, cumulative);
    }
    append_format(out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", prom.c_str(),
                  histogram->count());
    append_format(out, "%s_sum %" PRIu64 "\n%s_count %" PRIu64 "\n",
                  prom.c_str(), histogram->sum(), prom.c_str(),
                  histogram->count());
  }
  return out;
}

std::string render_dump(const Registry& registry) {
  std::string out;
  const auto counters = registry.counters();
  const auto gauges = registry.gauges();
  const auto histograms = registry.histograms();
  if (!counters.empty()) out += "counters:\n";
  for (const auto& [name, counter] : counters) {
    append_format(out, "  %-40s %12" PRIu64 "\n", name.c_str(),
                  counter->value());
  }
  if (!gauges.empty()) out += "gauges:\n";
  for (const auto& [name, gauge] : gauges) {
    append_format(out, "  %-40s %12" PRId64 "\n", name.c_str(),
                  gauge->value());
  }
  if (!histograms.empty()) out += "histograms:\n";
  for (const auto& [name, histogram] : histograms) {
    if (histogram->count() == 0) continue;
    append_format(out,
                  "  %-40s n=%-8" PRIu64 " mean=%-10.1f p50=%-8" PRIu64
                  " p90=%-8" PRIu64 " p99=%-8" PRIu64 " max=%" PRIu64 "\n",
                  name.c_str(), histogram->count(), histogram->mean(),
                  histogram->p50(), histogram->p90(), histogram->p99(),
                  histogram->max());
  }
  return out;
}

std::string render_trace_jsonl(const Tracer& tracer) {
  std::string out;
  for (const SpanRecord& span : tracer.snapshot()) {
    append_format(out,
                  "{\"span\":\"%s\",\"start_ns\":%" PRIu64
                  ",\"duration_ns\":%" PRIu64
                  ",\"depth\":%u,\"thread\":%u,\"trace\":%" PRIu64
                  ",\"process\":%u}\n",
                  span.name, span.start_ns, span.duration_ns, span.depth,
                  span.thread, span.trace_id, span.process);
  }
  return out;
}

std::string render_chrome_trace(const Tracer& tracer) {
  const std::vector<SpanRecord> spans = tracer.snapshot();

  // Chrome sorts lanes by pid and reserves 0 for the browser process, so
  // lanes are shifted by one: the server is pid 1, clients pid lane + 1.
  const auto pid_of = [](std::uint32_t process) { return process + 1; };

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto separate = [&] {
    if (!first) out.push_back(',');
    first = false;
  };

  std::map<std::uint32_t, bool> lanes;
  for (const SpanRecord& span : spans) lanes.emplace(span.process, true);
  for (const auto& [process, unused] : lanes) {
    separate();
    if (process == kServerProcess) {
      append_format(out,
                    "{\"ph\":\"M\",\"pid\":%u,\"name\":\"process_name\","
                    "\"args\":{\"name\":\"keyserver\"}}",
                    pid_of(process));
    } else {
      // client_process(user) == user + 1 for the small ids the harnesses
      // use, so the label round-trips back to the user id.
      append_format(out,
                    "{\"ph\":\"M\",\"pid\":%u,\"name\":\"process_name\","
                    "\"args\":{\"name\":\"client u%u\"}}",
                    pid_of(process), process - 1);
    }
  }

  for (const SpanRecord& span : spans) {
    separate();
    append_format(out,
                  "{\"ph\":\"X\",\"pid\":%u,\"tid\":%u,\"ts\":%.3f,"
                  "\"dur\":%.3f,\"name\":\"%s\",\"cat\":\"rekey\"",
                  pid_of(span.process), span.thread,
                  static_cast<double>(span.start_ns) / 1000.0,
                  static_cast<double>(span.duration_ns) / 1000.0, span.name);
    if (span.trace_id != 0) {
      append_format(out, ",\"args\":{\"trace\":%" PRIu64 "}",
                    span.trace_id);
    }
    out.push_back('}');
  }

  // Flow arrows: for every traced rekey, one arrow from the server's
  // dispatch span to the earliest span each client recorded for that
  // trace (receive for live deliveries, apply for drained buffers).
  struct Anchor {
    bool set = false;
    SpanRecord span;
  };
  std::map<std::uint64_t, Anchor> dispatches;
  std::map<std::pair<std::uint64_t, std::uint32_t>, Anchor> arrivals;
  for (const SpanRecord& span : spans) {
    if (span.trace_id == 0) continue;
    if (span.process == kServerProcess) {
      if (std::string_view(span.name) != "rekey.dispatch") continue;
      Anchor& anchor = dispatches[span.trace_id];
      if (!anchor.set || span.start_ns < anchor.span.start_ns) {
        anchor = Anchor{true, span};
      }
    } else {
      Anchor& anchor = arrivals[{span.trace_id, span.process}];
      if (!anchor.set || span.start_ns < anchor.span.start_ns) {
        anchor = Anchor{true, span};
      }
    }
  }
  for (const auto& [key, arrival] : arrivals) {
    const auto dispatch = dispatches.find(key.first);
    if (dispatch == dispatches.end()) continue;
    separate();
    append_format(out,
                  "{\"ph\":\"s\",\"pid\":%u,\"tid\":%u,\"ts\":%.3f,"
                  "\"id\":\"t%" PRIu64
                  ".p%u\",\"name\":\"rekey.flow\",\"cat\":\"rekey\"}",
                  pid_of(kServerProcess), dispatch->second.span.thread,
                  static_cast<double>(dispatch->second.span.start_ns) /
                      1000.0,
                  key.first, key.second);
    separate();
    append_format(out,
                  "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":%u,\"tid\":%u,"
                  "\"ts\":%.3f,\"id\":\"t%" PRIu64
                  ".p%u\",\"name\":\"rekey.flow\",\"cat\":\"rekey\"}",
                  pid_of(key.second), arrival.span.thread,
                  static_cast<double>(arrival.span.start_ns) / 1000.0,
                  key.first, key.second);
  }

  out += "]}";
  return out;
}

}  // namespace keygraphs::telemetry

#include "telemetry/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace keygraphs::telemetry {

namespace {

void append_format(std::string& out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void append_format(std::string& out, const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  const int written = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (written > 0) {
    out.append(buffer, std::min(static_cast<std::size_t>(written),
                                sizeof(buffer) - 1));
  }
}

/// Metric names use '.', Prometheus wants [a-zA-Z0-9_:]. Everything is
/// prefixed kg_ to namespace the exposition.
std::string prometheus_name(const std::string& name) {
  std::string out = "kg_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string render_jsonl(const Registry& registry) {
  std::string out;
  for (const auto& [name, counter] : registry.counters()) {
    append_format(out,
                  "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%" PRIu64
                  "}\n",
                  name.c_str(), counter->value());
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    append_format(out,
                  "{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%" PRId64
                  "}\n",
                  name.c_str(), gauge->value());
  }
  for (const auto& [name, histogram] : registry.histograms()) {
    append_format(
        out,
        "{\"type\":\"histogram\",\"name\":\"%s\",\"count\":%" PRIu64
        ",\"sum\":%" PRIu64 ",\"min\":%" PRIu64 ",\"max\":%" PRIu64
        ",\"mean\":%.3f,\"p50\":%" PRIu64 ",\"p90\":%" PRIu64
        ",\"p99\":%" PRIu64 "}\n",
        name.c_str(), histogram->count(), histogram->sum(),
        histogram->min(), histogram->max(), histogram->mean(),
        histogram->p50(), histogram->p90(), histogram->p99());
  }
  return out;
}

std::string render_prometheus(const Registry& registry) {
  std::string out;
  for (const auto& [name, counter] : registry.counters()) {
    const std::string prom = prometheus_name(name);
    append_format(out, "# TYPE %s counter\n%s %" PRIu64 "\n", prom.c_str(),
                  prom.c_str(), counter->value());
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    const std::string prom = prometheus_name(name);
    append_format(out, "# TYPE %s gauge\n%s %" PRId64 "\n", prom.c_str(),
                  prom.c_str(), gauge->value());
  }
  for (const auto& [name, histogram] : registry.histograms()) {
    const std::string prom = prometheus_name(name);
    append_format(out, "# TYPE %s histogram\n", prom.c_str());
    std::uint64_t cumulative = 0;
    for (const Histogram::Bucket& bucket : histogram->buckets()) {
      cumulative += bucket.count;
      append_format(out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                    prom.c_str(), bucket.upper, cumulative);
    }
    append_format(out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", prom.c_str(),
                  histogram->count());
    append_format(out, "%s_sum %" PRIu64 "\n%s_count %" PRIu64 "\n",
                  prom.c_str(), histogram->sum(), prom.c_str(),
                  histogram->count());
  }
  return out;
}

std::string render_dump(const Registry& registry) {
  std::string out;
  const auto counters = registry.counters();
  const auto gauges = registry.gauges();
  const auto histograms = registry.histograms();
  if (!counters.empty()) out += "counters:\n";
  for (const auto& [name, counter] : counters) {
    append_format(out, "  %-40s %12" PRIu64 "\n", name.c_str(),
                  counter->value());
  }
  if (!gauges.empty()) out += "gauges:\n";
  for (const auto& [name, gauge] : gauges) {
    append_format(out, "  %-40s %12" PRId64 "\n", name.c_str(),
                  gauge->value());
  }
  if (!histograms.empty()) out += "histograms:\n";
  for (const auto& [name, histogram] : histograms) {
    if (histogram->count() == 0) continue;
    append_format(out,
                  "  %-40s n=%-8" PRIu64 " mean=%-10.1f p50=%-8" PRIu64
                  " p90=%-8" PRIu64 " p99=%-8" PRIu64 " max=%" PRIu64 "\n",
                  name.c_str(), histogram->count(), histogram->mean(),
                  histogram->p50(), histogram->p90(), histogram->p99(),
                  histogram->max());
  }
  return out;
}

std::string render_trace_jsonl(const Tracer& tracer) {
  std::string out;
  for (const SpanRecord& span : tracer.snapshot()) {
    append_format(out,
                  "{\"span\":\"%s\",\"start_ns\":%" PRIu64
                  ",\"duration_ns\":%" PRIu64
                  ",\"depth\":%u,\"thread\":%u}\n",
                  span.name, span.start_ns, span.duration_ns, span.depth,
                  span.thread);
  }
  return out;
}

}  // namespace keygraphs::telemetry

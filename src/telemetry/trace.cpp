#include "telemetry/trace.h"

#include <chrono>

namespace keygraphs::telemetry {

namespace {

thread_local std::uint32_t t_span_depth = 0;
thread_local TraceContext t_trace{};
thread_local std::uint32_t t_process = kServerProcess;

}  // namespace

std::uint64_t next_trace_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

TraceBinding::TraceBinding(const TraceContext& context,
                           std::uint32_t process) noexcept
    : saved_context_(t_trace), saved_process_(t_process) {
  t_trace = context;
  t_process = process;
}

TraceBinding::~TraceBinding() {
  t_trace = saved_context_;
  t_process = saved_process_;
}

const TraceContext& current_trace() noexcept { return t_trace; }

std::uint32_t current_process() noexcept { return t_process; }

std::uint32_t thread_ordinal() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Tracer::Tracer(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

Tracer& Tracer::global() {
  static Tracer* instance = new Tracer();  // never destroyed, like Registry
  return *instance;
}

void Tracer::record(const SpanRecord& span) noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_[next_ % ring_.size()] = span;
  ++next_;
}

std::vector<SpanRecord> Tracer::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  const std::size_t capacity = ring_.size();
  const std::size_t live = next_ < capacity
                               ? static_cast<std::size_t>(next_)
                               : capacity;
  out.reserve(live);
  const std::uint64_t first = next_ - live;
  for (std::uint64_t i = first; i < next_; ++i) {
    out.push_back(ring_[i % capacity]);
  }
  return out;
}

std::uint64_t Tracer::recorded() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_;
}

void Tracer::clear() noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  next_ = 0;
}

ScopedSpan::ScopedSpan(const char* name, Histogram* latency) noexcept
    : name_(name), latency_(latency), active_(enabled()) {
  if (!active_) return;
  ++t_span_depth;
  start_ns_ = steady_now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const std::uint64_t duration = steady_now_ns() - start_ns_;
  --t_span_depth;  // report the depth this span opened at
  if (latency_ != nullptr) latency_->record(duration);
  Tracer::global().record(SpanRecord{name_, start_ns_, duration,
                                     t_span_depth, thread_ordinal(),
                                     t_trace.trace_id, t_process});
}

}  // namespace keygraphs::telemetry

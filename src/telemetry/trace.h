// Span tracing with a fixed-size ring buffer.
//
// A span is one named, timed region (a whole join, one RSA signature, one
// sendto). ScopedSpan measures RAII-style and pushes a SpanRecord into the
// global Tracer's ring, which keeps the most recent `capacity` spans and
// overwrites the oldest — bounded memory no matter how long the server
// runs. snapshot() returns the surviving spans oldest-first for the
// JSON-lines exporter. Recording takes a mutex; spans are emitted at
// operation/stage granularity (a handful per join/leave), so contention is
// negligible next to the work being measured.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "telemetry/metrics.h"

namespace keygraphs::telemetry {

/// Nanoseconds on the steady clock (monotonic; comparable within a run).
[[nodiscard]] std::uint64_t steady_now_ns() noexcept;

/// Small dense ordinal for the calling thread (0, 1, 2, ... in first-use
/// order); identifies threads in SpanRecords.
[[nodiscard]] std::uint32_t thread_ordinal() noexcept;

/// Cross-process correlation context for one rekey operation: stamped by
/// the server at plan time, carried on the wire as an optional datagram
/// extension, and rebound by the client while it processes the delivery.
/// trace_id == 0 means "no trace" everywhere.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t epoch = 0;   // group epoch the operation published
  std::uint8_t op_kind = 0;  // rekey::RekeyKind as a raw byte (layering)
  [[nodiscard]] bool active() const noexcept { return trace_id != 0; }
};

/// Process-wide unique, never-zero trace ids.
[[nodiscard]] std::uint64_t next_trace_id() noexcept;

/// Process lane identifiers for the Chrome trace exporter. The server owns
/// lane 0; each client gets a stable nonzero lane derived from its user id.
inline constexpr std::uint32_t kServerProcess = 0;
[[nodiscard]] constexpr std::uint32_t client_process(
    std::uint64_t user) noexcept {
  // Fold the u64 user id into a nonzero u32 lane; ids stay distinct for
  // every fleet the harnesses run (users are small integers in practice).
  const auto folded =
      static_cast<std::uint32_t>(user ^ (user >> 32)) & 0x7fffffffu;
  return folded + 1;
}

/// Binds a trace context and a process lane to the calling thread for the
/// binding's scope; every span recorded inside carries both. Restores the
/// previous binding on destruction, so bindings nest.
class TraceBinding {
 public:
  TraceBinding(const TraceContext& context, std::uint32_t process) noexcept;
  ~TraceBinding();

  TraceBinding(const TraceBinding&) = delete;
  TraceBinding& operator=(const TraceBinding&) = delete;

 private:
  TraceContext saved_context_;
  std::uint32_t saved_process_;
};

/// The calling thread's current binding (inactive context / lane 0 when
/// nothing is bound).
[[nodiscard]] const TraceContext& current_trace() noexcept;
[[nodiscard]] std::uint32_t current_process() noexcept;

struct SpanRecord {
  const char* name = "";        // static-lifetime string
  std::uint64_t start_ns = 0;   // steady clock
  std::uint64_t duration_ns = 0;
  std::uint32_t depth = 0;      // nesting depth within the thread (0 = root)
  std::uint32_t thread = 0;     // small per-thread ordinal
  std::uint64_t trace_id = 0;   // correlated operation; 0 = untraced
  std::uint32_t process = 0;    // exporter lane; 0 = server
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  /// The process-wide tracer ScopedSpan records into.
  static Tracer& global();

  void record(const SpanRecord& span) noexcept;

  /// Spans still in the ring, oldest first.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;

  /// Total spans ever recorded (>= snapshot().size(); the difference has
  /// been overwritten).
  [[nodiscard]] std::uint64_t recorded() const noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept {
    return ring_.size();
  }
  void clear() noexcept;

 private:
  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;
  std::uint64_t next_ = 0;  // total recorded; next_ % capacity = write slot
};

/// RAII span: times its scope, pushes to Tracer::global(), and optionally
/// records the duration into a latency histogram. Inert (two loads and a
/// branch) when telemetry is disabled.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name,
                      Histogram* latency = nullptr) noexcept;
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  Histogram* latency_;
  std::uint64_t start_ns_ = 0;
  bool active_;
};

}  // namespace keygraphs::telemetry

// Per-operation stage accounting — where does one join/leave spend its
// time?
//
// The paper's server measurement covers tree update, key generation,
// encryption, digest/signature computation, serialization and the send
// handoff (Section 5); this header names those stages and provides the
// machinery to attribute wall time to them without the layers knowing
// about each other:
//
//   - The server installs a StageCollector (thread-local, RAII) for the
//     duration of one operation.
//   - Any code on the call path — KeyTree key refreshes, the sealer's
//     signing, the transport send loop — opens a StageScope naming its
//     stage. Scopes nest; each records its *self* time (child scope time
//     is subtracted), so the per-stage numbers are disjoint and sum to the
//     wall time of the outermost scopes.
//   - When the operation finishes the server reads the breakdown off the
//     collector into the OpRecord, and each scope has also fed the global
//     `server.stage_ns.<stage>` histograms for the live exporters.
//
// With telemetry disabled, or with no collector installed (e.g. key
// refreshes during snapshot restore), a StageScope is a thread-local load
// and a branch — nothing is timed.
#pragma once

#include <array>
#include <cstdint>

#include "telemetry/metrics.h"

namespace keygraphs::telemetry {

/// The stage taxonomy. `kAuth` is measured but excluded from the paper's
/// processing time (Section 5 footnote 9 excludes authentication), so
/// breakdown consumers sum kTreeUpdate..kSend when comparing against
/// `processing_us`.
enum class Stage : std::uint8_t {
  kAuth = 0,        // ACL check, token verify, individual-key derivation
  kTreeUpdate = 1,  // KeyTree mutation minus key generation
  kKeygen = 2,      // fresh key material (KeyTree::refresh_key)
  kEncrypt = 3,     // strategy planning + key wrapping
  kSign = 4,        // digest and RSA signature computation
  kSerialize = 5,   // message bodies, envelopes, datagram framing
  kSend = 6,        // transport deliver/sendto handoff
};

inline constexpr std::size_t kStageCount = 7;

/// Lowercase snake_case stage name ("tree_update", ...), static lifetime.
[[nodiscard]] const char* stage_name(Stage stage) noexcept;

/// Self-time per stage, microseconds, indexed by Stage.
using StageBreakdown = std::array<double, kStageCount>;

/// Installs itself as the calling thread's active breakdown for its
/// lifetime (stackable: a nested collector shadows the outer one, which
/// resumes on destruction).
class StageCollector {
 public:
  StageCollector() noexcept;
  ~StageCollector();

  StageCollector(const StageCollector&) = delete;
  StageCollector& operator=(const StageCollector&) = delete;

  [[nodiscard]] const StageBreakdown& breakdown() const noexcept {
    return self_us_;
  }
  [[nodiscard]] double us(Stage stage) const noexcept {
    return self_us_[static_cast<std::size_t>(stage)];
  }
  /// Sum over all stages (including kAuth).
  [[nodiscard]] double total_us() const noexcept;

  /// The calling thread's active collector, or nullptr.
  [[nodiscard]] static StageCollector* current() noexcept;

 private:
  friend class StageScope;

  StageBreakdown self_us_{};
  StageCollector* previous_;
};

/// RAII stage attribution: adds this scope's self time (elapsed minus
/// nested StageScope time) to the active collector and the global
/// per-stage histograms, and emits a span to the tracer. Inert when
/// telemetry is disabled or no collector is installed.
class StageScope {
 public:
  explicit StageScope(Stage stage) noexcept;
  ~StageScope();

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  StageCollector* collector_;  // nullptr = inert
  StageScope* parent_;
  Stage stage_;
  std::uint32_t depth_ = 0;
  std::uint64_t start_ns_ = 0;
  std::uint64_t child_ns_ = 0;
};

}  // namespace keygraphs::telemetry

// Fleet convergence monitoring: publish-to-applied latency and SLOs.
//
// The paper's cost model measures server-side processing, but an epoch is
// only *done* when the fleet has applied it — possibly after NACK,
// retransmit, or resync round trips. The ConvergenceMonitor closes that
// loop: the server reports each epoch-advancing dispatch (note_publish)
// and every client reports its applied high-water mark (note_apply); the
// monitor turns the pairs into
//
//   fleet.convergence_ns   histogram of per-(client, epoch) latencies,
//                          so its p50/p99 are the fleet percentiles the
//                          SLO is written against
//   fleet.slo_violations   samples above the configured SLO
//   fleet.published_epoch  newest epoch the server has dispatched
//   fleet.epoch_lag.u<id>  per-client gauge: published - applied
//
// Timestamps are injected nanoseconds (the harnesses pass their fake
// clocks), so soaks and benches stay wall-clock free and deterministic.
// Lives in the telemetry layer, so user ids are plain uint64 (UserId is an
// alias of std::uint64_t upstack).
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "telemetry/metrics.h"

namespace keygraphs::telemetry {

class ConvergenceMonitor {
 public:
  /// Publishes retained for late appliers. A client that jumps past the
  /// ring's oldest epoch (resync after a long partition) only scores the
  /// retained ones — the ring bounds memory for unbounded-uptime servers.
  static constexpr std::size_t kDefaultPublishCapacity = 4096;

  explicit ConvergenceMonitor(
      std::size_t publish_capacity = kDefaultPublishCapacity);

  /// The process-wide monitor the server and clients feed.
  static ConvergenceMonitor& global();

  /// Convergence SLO in microseconds; samples above it bump
  /// fleet.slo_violations. 0 (default) disables the check.
  void set_slo_us(std::uint64_t slo_us);
  [[nodiscard]] std::uint64_t slo_us() const;

  /// Server side: epoch `epoch` was dispatched to `fleet_size` members at
  /// `now_ns`. Epochs must arrive in nondecreasing order (dispatch order).
  void note_publish(std::uint64_t epoch, std::uint64_t now_ns,
                    std::size_t fleet_size);

  /// Client side: `user` has contiguously applied everything up to
  /// `applied_epoch` as of `now_ns`. Scores one latency sample per newly
  /// covered retained publish and refreshes the user's lag gauge.
  void note_apply(std::uint64_t user, std::uint64_t applied_epoch,
                  std::uint64_t now_ns);

  /// Drops a departed member's state and zeroes its lag gauge.
  void forget_user(std::uint64_t user);

  [[nodiscard]] std::uint64_t published_epoch() const;
  /// Largest published - applied over tracked clients (0 when none).
  [[nodiscard]] std::uint64_t max_lag() const;

  /// Forgets retained publishes and client high-water marks (gauges are
  /// zeroed); the SLO setting survives. Benches call this between sweep
  /// points, right after Registry::reset().
  void reset();

  /// Re-anchors the monitor after a server's state was replaced wholesale
  /// (snapshot restore, journal recovery, standby promotion): drops the
  /// retained publish ring — those publish timestamps belong to the old
  /// timeline and scoring them against post-restore applies would fake
  /// latencies — sets the published high-water mark to `epoch`, and clamps
  /// client applied marks above it so the next real publish still scores.
  /// Client identities and the SLO survive.
  void restart_from(std::uint64_t epoch);

 private:
  struct Publish {
    std::uint64_t epoch;
    std::uint64_t ns;
  };
  struct ClientState {
    std::uint64_t applied = 0;
    Gauge* lag = nullptr;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::uint64_t slo_ns_ = 0;
  std::uint64_t published_epoch_ = 0;
  std::deque<Publish> publishes_;  // ascending epoch
  std::unordered_map<std::uint64_t, ClientState> clients_;
};

}  // namespace keygraphs::telemetry

#include "telemetry/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"
#include "telemetry/export.h"

namespace keygraphs::telemetry {

namespace {

constexpr std::size_t kMaxRequest = 4096;
constexpr int kPollMs = 250;  // stop() latency bound

std::string make_response(int status, const char* reason,
                          const char* content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += std::to_string(status);
  out += " ";
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer went away; a scrape is best-effort
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::string TelemetryHttpServer::respond(const std::string& path) {
  if (path == "/metrics") {
    return make_response(200, "OK",
                         "text/plain; version=0.0.4; charset=utf-8",
                         render_prometheus(Registry::global()));
  }
  if (path == "/healthz") {
    // Driven by the `server.health` gauge the overload HealthMonitor
    // publishes (0 = healthy, 1 = degraded, 2 = shedding). A process that
    // never publishes it — overload off, or no key server at all — reads
    // 0 and answers exactly as before. Degraded stays 200 (the server is
    // serving, just batching); shedding is 503 so load balancers and
    // probes back off while admission is refusing work.
    const double health = Registry::global().gauge("server.health").value();
    if (health >= 2.0) {
      return make_response(503, "Service Unavailable",
                           "text/plain; charset=utf-8", "shedding\n");
    }
    if (health >= 1.0) {
      return make_response(200, "OK", "text/plain; charset=utf-8",
                           "degraded\n");
    }
    return make_response(200, "OK", "text/plain; charset=utf-8", "ok\n");
  }
  if (path == "/trace") {
    return make_response(200, "OK", "application/json",
                         render_chrome_trace(Tracer::global()));
  }
  return make_response(404, "Not Found", "text/plain; charset=utf-8",
                       "not found\n");
}

TelemetryHttpServer::TelemetryHttpServer(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw Error("telemetry http: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 8) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("telemetry http: cannot bind 127.0.0.1:" +
                std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  thread_ = std::thread([this] { serve(); });
}

TelemetryHttpServer::~TelemetryHttpServer() { stop(); }

void TelemetryHttpServer::stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_relaxed);
  thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TelemetryHttpServer::serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd waiter{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&waiter, 1, kPollMs);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stop_

    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;

    // Bound the read so a stalled peer cannot wedge the serving thread.
    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

    std::string request;
    char buffer[1024];
    while (request.size() < kMaxRequest &&
           request.find("\r\n\r\n") == std::string::npos) {
      const ssize_t n = ::recv(client, buffer, sizeof(buffer), 0);
      if (n <= 0) break;
      request.append(buffer, static_cast<std::size_t>(n));
    }

    // "GET <path> HTTP/1.x" — anything else is a 400.
    std::string response;
    const std::size_t line_end = request.find("\r\n");
    if (request.rfind("GET ", 0) == 0 && line_end != std::string::npos) {
      const std::size_t path_end = request.find(' ', 4);
      if (path_end != std::string::npos && path_end < line_end) {
        response = respond(request.substr(4, path_end - 4));
      }
    }
    if (response.empty()) {
      response = make_response(400, "Bad Request",
                               "text/plain; charset=utf-8", "bad request\n");
    }
    send_all(client, response);
    ::close(client);
  }
}

}  // namespace keygraphs::telemetry

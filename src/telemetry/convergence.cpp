#include "telemetry/convergence.h"

#include <algorithm>
#include <string>

namespace keygraphs::telemetry {

namespace {

struct FleetMetrics {
  Histogram& convergence_ns;
  Counter& slo_violations;
  Gauge& published_epoch;

  static FleetMetrics& get() {
    auto& registry = Registry::global();
    static FleetMetrics* metrics = new FleetMetrics{
        registry.histogram("fleet.convergence_ns",
                           "Publish-to-applied latency per (client, epoch); "
                           "quantiles are the fleet convergence percentiles"),
        registry.counter("fleet.slo_violations",
                         "Convergence samples above the configured SLO"),
        registry.gauge("fleet.published_epoch",
                       "Newest epoch the server has dispatched"),
    };
    return *metrics;
  }
};

}  // namespace

ConvergenceMonitor::ConvergenceMonitor(std::size_t publish_capacity)
    : capacity_(std::max<std::size_t>(publish_capacity, 1)) {}

ConvergenceMonitor& ConvergenceMonitor::global() {
  static ConvergenceMonitor* instance =
      new ConvergenceMonitor();  // never destroyed, like Registry
  return *instance;
}

void ConvergenceMonitor::set_slo_us(std::uint64_t slo_us) {
  const std::lock_guard<std::mutex> lock(mutex_);
  slo_ns_ = slo_us * 1000;
}

std::uint64_t ConvergenceMonitor::slo_us() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slo_ns_ / 1000;
}

void ConvergenceMonitor::note_publish(std::uint64_t epoch,
                                      std::uint64_t now_ns,
                                      std::size_t fleet_size) {
  (void)fleet_size;  // recorded for future per-publish completeness checks
  const std::lock_guard<std::mutex> lock(mutex_);
  if (epoch <= published_epoch_) return;  // replay/duplicate dispatch
  published_epoch_ = epoch;
  publishes_.push_back(Publish{epoch, now_ns});
  while (publishes_.size() > capacity_) publishes_.pop_front();
  FleetMetrics::get().published_epoch.set(
      static_cast<std::int64_t>(epoch));
}

void ConvergenceMonitor::note_apply(std::uint64_t user,
                                    std::uint64_t applied_epoch,
                                    std::uint64_t now_ns) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ClientState& state = clients_[user];
  if (state.lag == nullptr) {
    state.lag = &Registry::global().gauge(
        "fleet.epoch_lag.u" + std::to_string(user),
        "Published minus applied epoch for one member");
  }
  if (applied_epoch > state.applied) {
    // Score every retained publish this apply newly covers: an apply that
    // jumps several epochs (drained reorder buffer, keyset resync) closes
    // each of them now, at this clock reading.
    auto it = std::lower_bound(
        publishes_.begin(), publishes_.end(), state.applied + 1,
        [](const Publish& p, std::uint64_t epoch) { return p.epoch < epoch; });
    FleetMetrics& metrics = FleetMetrics::get();
    for (; it != publishes_.end() && it->epoch <= applied_epoch; ++it) {
      const std::uint64_t latency = now_ns > it->ns ? now_ns - it->ns : 0;
      metrics.convergence_ns.record(latency);
      if (slo_ns_ != 0 && latency > slo_ns_) metrics.slo_violations.add(1);
    }
    state.applied = applied_epoch;
  }
  state.lag->set(static_cast<std::int64_t>(
      published_epoch_ > state.applied ? published_epoch_ - state.applied
                                       : 0));
}

void ConvergenceMonitor::forget_user(std::uint64_t user) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = clients_.find(user);
  if (it == clients_.end()) return;
  if (it->second.lag != nullptr) it->second.lag->set(0);
  clients_.erase(it);
}

std::uint64_t ConvergenceMonitor::published_epoch() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return published_epoch_;
}

std::uint64_t ConvergenceMonitor::max_lag() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t worst = 0;
  for (const auto& [user, state] : clients_) {
    if (published_epoch_ > state.applied) {
      worst = std::max(worst, published_epoch_ - state.applied);
    }
  }
  return worst;
}

void ConvergenceMonitor::restart_from(std::uint64_t epoch) {
  const std::lock_guard<std::mutex> lock(mutex_);
  publishes_.clear();
  published_epoch_ = epoch;
  for (auto& [user, state] : clients_) {
    if (state.applied > epoch) state.applied = epoch;
    if (state.lag != nullptr) {
      state.lag->set(static_cast<std::int64_t>(epoch - state.applied));
    }
  }
  FleetMetrics::get().published_epoch.set(static_cast<std::int64_t>(epoch));
}

void ConvergenceMonitor::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  publishes_.clear();
  published_epoch_ = 0;
  for (auto& [user, state] : clients_) {
    if (state.lag != nullptr) state.lag->set(0);
  }
  clients_.clear();
  FleetMetrics::get().published_epoch.set(0);
}

}  // namespace keygraphs::telemetry

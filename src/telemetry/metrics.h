// Low-overhead metrics for the key-graph hot paths.
//
// The paper's evaluation attributes server cost per join/leave to concrete
// work (tree update, key generation, encryption, signing, sending); this
// library is the substrate those attributions are recorded into. Three
// primitives — monotonic Counter, Gauge, and a log-linear-bucket Histogram
// with quantile estimation — live in a process-global Registry and are
// safe to update from any thread with relaxed atomics. A global runtime
// switch (`set_enabled(false)`) turns every instrumentation site into a
// branch-and-skip so disabled runs measure the uninstrumented system.
//
// Hot-path idiom: resolve the metric once per call site, then update:
//
//   static auto& encryptions =
//       telemetry::Registry::global().counter("rekey.key_encryptions");
//   if (telemetry::enabled()) encryptions.add(n);
//
// Registered metrics are never destroyed or moved (the registry only
// zeroes them on reset()), so cached references stay valid for the
// process lifetime.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace keygraphs::telemetry {

/// Global collection switch. Default on; `keyserverd` maps the spec key
/// `telemetry = off` onto this. Checked by every instrumentation site.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time signed value (group size, tree height, queue depth).
class Gauge {
 public:
  void set(std::int64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log-linear-bucket histogram over non-negative integer samples
/// (latencies in nanoseconds, sizes in bytes, counts).
///
/// Values below kLinearLimit land in exact one-value buckets; above that,
/// each power of two splits into kSubBuckets sub-buckets, bounding the
/// relative quantile error by 1/kSubBuckets (6.25%). Covers the full u64
/// range in kBucketCount fixed slots, so record() is two relaxed
/// fetch_adds plus two bounded CAS loops — no allocation, no locks.
class Histogram {
 public:
  static constexpr std::uint64_t kLinearLimit = 16;
  static constexpr std::size_t kSubBuckets = 16;
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(kLinearLimit) + (64 - 4) * kSubBuckets;

  void record(std::uint64_t value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// 0 when empty.
  [[nodiscard]] std::uint64_t min() const noexcept;
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept;

  /// Smallest bucket upper bound covering at least q of the recorded
  /// samples (q in [0, 1]). Exact below kLinearLimit; within 1/kSubBuckets
  /// above. 0 when empty.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;
  [[nodiscard]] std::uint64_t p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] std::uint64_t p90() const noexcept { return quantile(0.90); }
  [[nodiscard]] std::uint64_t p99() const noexcept { return quantile(0.99); }

  void reset() noexcept;

  /// Non-empty buckets, ascending by bound, for exporters.
  struct Bucket {
    std::uint64_t upper;  // inclusive upper bound of the bucket
    std::uint64_t count;  // samples in this bucket (not cumulative)
  };
  [[nodiscard]] std::vector<Bucket> buckets() const;

  /// Bucket layout (exposed for tests and exporters).
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value) noexcept;
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t index) noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ULL};
  std::atomic<std::uint64_t> max_{0};
};

/// Name -> metric map. Metrics are created on first lookup and live for
/// the process; lookups take a mutex, so call sites cache the reference
/// (function-local static) rather than resolving per event.
class Registry {
 public:
  /// The process-wide registry every built-in instrumentation site uses.
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Create-or-lookup with help text attached on first registration (the
  /// exporters emit it as `# HELP`). Later calls never overwrite existing
  /// help, so the creation site owns the description.
  Counter& counter(std::string_view name, std::string_view help);
  Gauge& gauge(std::string_view name, std::string_view help);
  Histogram& histogram(std::string_view name, std::string_view help);

  /// Attaches help text to a metric name (first writer wins).
  void set_help(std::string_view name, std::string_view help);
  /// Registered help text for `name`; empty when none was attached.
  [[nodiscard]] std::string help(std::string_view name) const;

  /// Sorted snapshots for exporters. Pointers stay valid forever.
  [[nodiscard]] std::vector<std::pair<std::string, const Counter*>>
  counters() const;
  [[nodiscard]] std::vector<std::pair<std::string, const Gauge*>> gauges()
      const;
  [[nodiscard]] std::vector<std::pair<std::string, const Histogram*>>
  histograms() const;

  /// Zeroes every registered metric; registrations (and cached references)
  /// survive. Benches use this between phases. Resetting the global
  /// registry also clears the global Tracer's span ring, so a post-reset
  /// snapshot never mixes spans from before the reset (e.g. build-phase
  /// spans bleeding into a measured churn).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::string, std::less<>> help_;
};

}  // namespace keygraphs::telemetry

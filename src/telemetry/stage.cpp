#include "telemetry/stage.h"

#include "telemetry/trace.h"

namespace keygraphs::telemetry {

namespace {

thread_local StageCollector* t_collector = nullptr;
thread_local StageScope* t_top_scope = nullptr;

Histogram& stage_histogram(Stage stage) {
  // One histogram per stage, resolved once per process.
  static std::array<Histogram*, kStageCount>* slots = [] {
    auto* out = new std::array<Histogram*, kStageCount>();
    for (std::size_t i = 0; i < kStageCount; ++i) {
      (*out)[i] = &Registry::global().histogram(
          std::string("server.stage_ns.") +
          stage_name(static_cast<Stage>(i)));
    }
    return out;
  }();
  return *(*slots)[static_cast<std::size_t>(stage)];
}

}  // namespace

const char* stage_name(Stage stage) noexcept {
  switch (stage) {
    case Stage::kAuth:
      return "auth";
    case Stage::kTreeUpdate:
      return "tree_update";
    case Stage::kKeygen:
      return "keygen";
    case Stage::kEncrypt:
      return "encrypt";
    case Stage::kSign:
      return "sign";
    case Stage::kSerialize:
      return "serialize";
    case Stage::kSend:
      return "send";
  }
  return "?";
}

StageCollector::StageCollector() noexcept : previous_(t_collector) {
  t_collector = this;
}

StageCollector::~StageCollector() { t_collector = previous_; }

double StageCollector::total_us() const noexcept {
  double total = 0.0;
  for (const double us : self_us_) total += us;
  return total;
}

StageCollector* StageCollector::current() noexcept { return t_collector; }

StageScope::StageScope(Stage stage) noexcept
    : collector_(enabled() ? t_collector : nullptr),
      parent_(nullptr),
      stage_(stage) {
  if (collector_ == nullptr) return;
  parent_ = t_top_scope;
  depth_ = parent_ == nullptr ? 0 : parent_->depth_ + 1;
  t_top_scope = this;
  start_ns_ = steady_now_ns();
}

StageScope::~StageScope() {
  if (collector_ == nullptr) return;
  const std::uint64_t total_ns = steady_now_ns() - start_ns_;
  const std::uint64_t self_ns =
      total_ns > child_ns_ ? total_ns - child_ns_ : 0;
  t_top_scope = parent_;
  if (parent_ != nullptr) parent_->child_ns_ += total_ns;
  collector_->self_us_[static_cast<std::size_t>(stage_)] +=
      static_cast<double>(self_ns) / 1000.0;
  stage_histogram(stage_).record(self_ns);
  Tracer::global().record(SpanRecord{stage_name(stage_), start_ns_, total_ns,
                                     depth_, thread_ordinal(),
                                     current_trace().trace_id,
                                     current_process()});
}

}  // namespace keygraphs::telemetry

// Minimal embedded HTTP scrape endpoint.
//
// Serves the process-global telemetry over HTTP/1.0 on 127.0.0.1 from its
// own thread, so a scrape never blocks the daemon's receive loop:
//
//   GET /metrics  -> render_prometheus(Registry::global())
//   GET /healthz  -> "ok\n"
//   GET /trace    -> render_chrome_trace(Tracer::global())
//
// Deliberately not a web server: one connection at a time, GET only,
// request line + headers capped at 4 KiB, close after every response.
// That is exactly the shape of a Prometheus scrape or a curl, and it keeps
// the implementation a page of POSIX sockets with no new dependencies.
// The transport layer's TcpConnection is unsuitable here — it speaks the
// library's length-prefixed framing, not HTTP — and telemetry sits below
// transport anyway.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace keygraphs::telemetry {

class TelemetryHttpServer {
 public:
  /// Binds 127.0.0.1:port (0 = ephemeral) and starts the serving thread.
  /// Throws keygraphs::Error on bind failure.
  explicit TelemetryHttpServer(std::uint16_t port = 0);
  ~TelemetryHttpServer();

  TelemetryHttpServer(const TelemetryHttpServer&) = delete;
  TelemetryHttpServer& operator=(const TelemetryHttpServer&) = delete;

  /// The bound port (the resolved one when constructed with 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Stops the serving thread and closes the socket. Idempotent; the
  /// destructor calls it.
  void stop();

  /// Request routing, exposed for tests: full HTTP/1.0 response bytes for
  /// a request path.
  [[nodiscard]] static std::string respond(const std::string& path);

 private:
  void serve();

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace keygraphs::telemetry

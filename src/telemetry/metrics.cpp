#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>

#include "telemetry/trace.h"

namespace keygraphs::telemetry {

namespace {

std::atomic<bool> g_enabled{true};

void fold_min(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t current = slot.load(std::memory_order_relaxed);
  while (value < current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

void fold_max(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t current = slot.load(std::memory_order_relaxed);
  while (value > current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

bool enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

std::size_t Histogram::bucket_index(std::uint64_t value) noexcept {
  if (value < kLinearLimit) return static_cast<std::size_t>(value);
  // 2^power <= value < 2^(power+1), power >= 4. The top kSubBuckets
  // fractions of the octave pick the sub-bucket.
  const int power = std::bit_width(value) - 1;
  const auto sub = static_cast<std::size_t>(
      (value >> (power - 4)) - kLinearLimit);
  return static_cast<std::size_t>(kLinearLimit) +
         static_cast<std::size_t>(power - 4) * kSubBuckets + sub;
}

std::uint64_t Histogram::bucket_upper(std::size_t index) noexcept {
  if (index < kLinearLimit) return index;
  const std::size_t power = (index - kLinearLimit) / kSubBuckets + 4;
  const std::size_t sub = (index - kLinearLimit) % kSubBuckets;
  // Largest value whose top bits map to this sub-bucket.
  return ((kLinearLimit + sub + 1) << (power - 4)) - 1;
}

void Histogram::record(std::uint64_t value) noexcept {
  counts_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  fold_min(min_, value);
  fold_max(max_, value);
}

std::uint64_t Histogram::min() const noexcept {
  const std::uint64_t value = min_.load(std::memory_order_relaxed);
  return value == ~0ULL ? 0 : value;
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0
               : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t Histogram::quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(total))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += counts_[i].load(std::memory_order_relaxed);
    if (cumulative >= target) return bucket_upper(i);
  }
  return max();
}

void Histogram::reset() noexcept {
  for (auto& bucket : counts_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ULL, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::vector<Histogram::Bucket> Histogram::buckets() const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t n = counts_[i].load(std::memory_order_relaxed);
    if (n != 0) out.push_back(Bucket{bucket_upper(i), n});
  }
  return out;
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // never destroyed: metrics
  return *instance;                            // may outlive static dtors
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

Counter& Registry::counter(std::string_view name, std::string_view help) {
  set_help(name, help);
  return counter(name);
}

Gauge& Registry::gauge(std::string_view name, std::string_view help) {
  set_help(name, help);
  return gauge(name);
}

Histogram& Registry::histogram(std::string_view name, std::string_view help) {
  set_help(name, help);
  return histogram(name);
}

void Registry::set_help(std::string_view name, std::string_view help) {
  if (help.empty()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  help_.emplace(std::string(name), std::string(help));  // first writer wins
}

std::string Registry::help(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = help_.find(name);
  return it == help_.end() ? std::string() : it->second;
}

std::vector<std::pair<std::string, const Counter*>> Registry::counters()
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const Counter*>> out;
  out.reserve(counters_.size());
  for (const auto& [name, metric] : counters_) {
    out.emplace_back(name, metric.get());
  }
  return out;
}

std::vector<std::pair<std::string, const Gauge*>> Registry::gauges() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const Gauge*>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, metric] : gauges_) {
    out.emplace_back(name, metric.get());
  }
  return out;
}

std::vector<std::pair<std::string, const Histogram*>> Registry::histograms()
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, metric] : histograms_) {
    out.emplace_back(name, metric.get());
  }
  return out;
}

void Registry::reset() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, metric] : counters_) metric->reset();
    for (auto& [name, metric] : gauges_) metric->reset();
    for (auto& [name, metric] : histograms_) metric->reset();
  }
  // The span ring is the tracing half of the same snapshot: a reset that
  // zeroed every metric but kept earlier spans would pair fresh counters
  // with stale traces (the experiment driver hit exactly that, measuring
  // churn with build-phase spans still in the ring).
  if (this == &global()) Tracer::global().clear();
}

}  // namespace keygraphs::telemetry

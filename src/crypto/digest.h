// Streaming message-digest interface plus algorithm registry.
//
// The paper's prototype computes MD5 digests of rekey messages and signs
// them with RSA; SHA-1 and SHA-256 are provided for the digest ablation
// benchmark. All three are Merkle–Damgård constructions over 64-byte blocks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/bytes.h"

namespace keygraphs::crypto {

/// Incremental digest. update() may be called any number of times; finish()
/// returns the digest and resets the object to its initial state, so one
/// instance can be reused for many messages (the server hashes thousands of
/// rekey messages per second).
class Digest {
 public:
  virtual ~Digest() = default;

  /// Digest output size in bytes (16 for MD5, 20 for SHA-1, 32 for SHA-256).
  [[nodiscard]] virtual std::size_t digest_size() const noexcept = 0;

  /// Internal block size in bytes (64 for all provided algorithms);
  /// needed by HMAC.
  [[nodiscard]] virtual std::size_t block_size() const noexcept = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  virtual void update(BytesView data) = 0;

  /// Finalize, return the digest, and reset for the next message.
  virtual Bytes finish() = 0;

  /// Fresh instance of the same algorithm in initial state.
  [[nodiscard]] virtual std::unique_ptr<Digest> clone() const = 0;
};

/// Identifies a digest in configuration and on the wire. kNone means the
/// server sends rekey messages without integrity protection (the paper's
/// "encryption only" measurement configuration).
enum class DigestAlgorithm : std::uint8_t {
  kNone = 0,
  kMd5 = 1,
  kSha1 = 2,
  kSha256 = 3,
};

/// Factory. Throws CryptoError for kNone or unknown values.
std::unique_ptr<Digest> make_digest(DigestAlgorithm algorithm);

/// One-shot convenience: digest of a single buffer.
Bytes digest_of(DigestAlgorithm algorithm, BytesView data);

/// Digest output size in bytes without constructing an instance.
std::size_t digest_size(DigestAlgorithm algorithm);

std::string digest_name(DigestAlgorithm algorithm);

}  // namespace keygraphs::crypto

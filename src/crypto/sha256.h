// SHA-256 (FIPS 180-4): the digest used by the Merkle batch signer when a
// modern configuration is selected, and an ablation point against MD5.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/digest.h"

namespace keygraphs::crypto {

class Sha256 final : public Digest {
 public:
  Sha256() { reset(); }

  [[nodiscard]] std::size_t digest_size() const noexcept override {
    return 32;
  }
  [[nodiscard]] std::size_t block_size() const noexcept override { return 64; }
  [[nodiscard]] std::string name() const override { return "SHA-256"; }

  void update(BytesView data) override;
  Bytes finish() override;
  [[nodiscard]] std::unique_ptr<Digest> clone() const override {
    return std::make_unique<Sha256>();
  }

 private:
  void reset();
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace keygraphs::crypto

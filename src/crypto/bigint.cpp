#include "crypto/bigint.h"

#include <algorithm>
#include <bit>

#include "common/error.h"
#include "crypto/random.h"

namespace keygraphs::crypto {

namespace {

constexpr std::uint64_t kBase = std::uint64_t{1} << 32;

// Small primes for the pre-sieve in Miller–Rabin.
constexpr std::uint32_t kSmallPrimes[] = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

}  // namespace

BigInt::BigInt(std::uint64_t value) {
  if (value != 0) limbs_.push_back(static_cast<std::uint32_t>(value));
  if (value >> 32) limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
}

void BigInt::trim() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::from_bytes_be(BytesView bytes) {
  BigInt out;
  out.limbs_.assign((bytes.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const std::size_t byte_index = bytes.size() - 1 - i;  // little-endian pos
    out.limbs_[i / 4] |= static_cast<std::uint32_t>(bytes[byte_index])
                         << (8 * (i % 4));
  }
  out.trim();
  return out;
}

Bytes BigInt::to_bytes_be(std::size_t min_size) const {
  const std::size_t significant = (bit_length() + 7) / 8;
  const std::size_t size = std::max(significant, min_size);
  Bytes out(size, 0x00);
  for (std::size_t i = 0; i < significant; ++i) {
    out[size - 1 - i] = static_cast<std::uint8_t>(
        limbs_[i / 4] >> (8 * (i % 4)));
  }
  return out;
}

BigInt BigInt::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2 != 0) padded.insert(padded.begin(), '0');
  return from_bytes_be(keygraphs::from_hex(padded));
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  std::string hex = keygraphs::to_hex(to_bytes_be());
  const std::size_t nonzero = hex.find_first_not_of('0');
  return hex.substr(nonzero);
}

std::size_t BigInt::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  return 32 * (limbs_.size() - 1) +
         (32 - static_cast<std::size_t>(std::countl_zero(limbs_.back())));
}

bool BigInt::bit(std::size_t i) const noexcept {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1u;
}

std::uint64_t BigInt::to_u64() const noexcept {
  std::uint64_t v = 0;
  if (!limbs_.empty()) v = limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() <=> b.limbs_.size();
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] <=> b.limbs_[i];
  }
  return std::strong_ordering::equal;
}

BigInt operator+(const BigInt& a, const BigInt& b) {
  BigInt out;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<std::uint32_t>(carry);
  out.trim();
  return out;
}

BigInt operator-(const BigInt& a, const BigInt& b) {
  if (a < b) throw Error("BigInt: negative result in subtraction");
  BigInt out;
  out.limbs_.resize(a.limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= b.limbs_[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  out.trim();
  return out;
}

BigInt operator*(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return BigInt{};
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = a.limbs_[i];
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(out.limbs_[i + j]) + ai * b.limbs_[j] +
          carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + b.limbs_.size();
    while (carry != 0) {
      const std::uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.trim();
  return out;
}

BigInt operator<<(const BigInt& a, std::size_t bits) {
  if (a.is_zero() || bits == 0) {
    BigInt out = a;
    return out;
  }
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(a.limbs_[i])
                            << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

BigInt operator>>(const BigInt& a, std::size_t bits) {
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  if (limb_shift >= a.limbs_.size()) return BigInt{};
  BigInt out;
  out.limbs_.assign(a.limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(a.limbs_[i + limb_shift]) >>
                      bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < a.limbs_.size()) {
      v |= static_cast<std::uint64_t>(a.limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

std::pair<BigInt, BigInt> BigInt::divmod(const BigInt& a, const BigInt& b) {
  if (b.is_zero()) throw Error("BigInt: division by zero");
  if (a < b) return {BigInt{}, a};

  // Single-limb divisor: simple schoolbook pass.
  if (b.limbs_.size() == 1) {
    const std::uint64_t divisor = b.limbs_[0];
    BigInt quotient;
    quotient.limbs_.resize(a.limbs_.size(), 0);
    std::uint64_t remainder = 0;
    for (std::size_t i = a.limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (remainder << 32) | a.limbs_[i];
      quotient.limbs_[i] = static_cast<std::uint32_t>(cur / divisor);
      remainder = cur % divisor;
    }
    quotient.trim();
    return {quotient, BigInt{remainder}};
  }

  // Knuth Algorithm D (TAOCP vol. 2, 4.3.1).
  const int shift = std::countl_zero(b.limbs_.back());
  const BigInt u_norm = a << static_cast<std::size_t>(shift);
  const BigInt v_norm = b << static_cast<std::size_t>(shift);
  const std::size_t n = v_norm.limbs_.size();
  const std::size_t m = u_norm.limbs_.size() >= n
                            ? u_norm.limbs_.size() - n
                            : 0;

  std::vector<std::uint32_t> u = u_norm.limbs_;
  u.resize(u_norm.limbs_.size() + 1, 0);  // u[m+n] guard limb
  const std::vector<std::uint32_t>& v = v_norm.limbs_;

  BigInt quotient;
  quotient.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate qhat from the top two dividend limbs and top divisor limb.
    const std::uint64_t numerator =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t qhat = numerator / v[n - 1];
    std::uint64_t rhat = numerator % v[n - 1];
    while (qhat >= kBase ||
           qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= kBase) break;
    }

    // Multiply-and-subtract qhat * v from u[j .. j+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t product = qhat * v[i] + carry;
      carry = product >> 32;
      const std::int64_t diff = static_cast<std::int64_t>(u[i + j]) -
                                static_cast<std::int64_t>(product & 0xffffffffu) -
                                borrow;
      u[i + j] = static_cast<std::uint32_t>(diff);
      borrow = diff < 0 ? 1 : 0;
    }
    const std::int64_t top = static_cast<std::int64_t>(u[j + n]) -
                             static_cast<std::int64_t>(carry) - borrow;
    u[j + n] = static_cast<std::uint32_t>(top);

    if (top < 0) {
      // qhat was one too large; add v back.
      --qhat;
      std::uint64_t add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum =
            static_cast<std::uint64_t>(u[i + j]) + v[i] + add_carry;
        u[i + j] = static_cast<std::uint32_t>(sum);
        add_carry = sum >> 32;
      }
      u[j + n] = static_cast<std::uint32_t>(u[j + n] + add_carry);
    }
    quotient.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }

  quotient.trim();
  BigInt remainder;
  remainder.limbs_.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  remainder.trim();
  remainder = remainder >> static_cast<std::size_t>(shift);
  return {quotient, remainder};
}

BigInt operator/(const BigInt& a, const BigInt& b) {
  return BigInt::divmod(a, b).first;
}

BigInt operator%(const BigInt& a, const BigInt& b) {
  return BigInt::divmod(a, b).second;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::mod_inverse(const BigInt& a, const BigInt& m) {
  // Iterative extended Euclid, tracking only the coefficient of a and its
  // sign (unsigned magnitudes with an explicit sign flag).
  if (m <= BigInt{1}) throw CryptoError("mod_inverse: modulus must be > 1");
  BigInt r0 = m, r1 = a % m;
  BigInt t0{0}, t1{1};
  bool t0_neg = false, t1_neg = false;
  while (!r1.is_zero()) {
    auto [q, r2] = divmod(r0, r1);
    // t2 = t0 - q * t1 with sign tracking.
    const BigInt qt1 = q * t1;
    BigInt t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      if (t0 >= qt1) {
        t2 = t0 - qt1;
        t2_neg = t0_neg;
      } else {
        t2 = qt1 - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + qt1;
      t2_neg = t0_neg;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }
  if (r0 != BigInt{1}) throw CryptoError("mod_inverse: not invertible");
  if (t0_neg) return m - (t0 % m);
  return t0 % m;
}

BigInt BigInt::random_bits(SecureRandom& rng, std::size_t bits) {
  if (bits == 0) return BigInt{};
  Bytes raw = rng.bytes((bits + 7) / 8);
  // Clear excess leading bits, then force the top bit so the width is exact.
  const std::size_t excess = raw.size() * 8 - bits;
  raw[0] &= static_cast<std::uint8_t>(0xff >> excess);
  raw[0] |= static_cast<std::uint8_t>(0x80 >> excess);
  return from_bytes_be(raw);
}

BigInt BigInt::random_below(SecureRandom& rng, const BigInt& bound) {
  if (bound.is_zero()) throw Error("random_below: zero bound");
  const std::size_t bits = bound.bit_length();
  for (;;) {
    Bytes raw = rng.bytes((bits + 7) / 8);
    const std::size_t excess = raw.size() * 8 - bits;
    raw[0] &= static_cast<std::uint8_t>(0xff >> excess);
    BigInt candidate = from_bytes_be(raw);
    if (candidate < bound) return candidate;
  }
}

bool BigInt::is_probable_prime(SecureRandom& rng, int rounds) const {
  if (*this < BigInt{2}) return false;
  for (std::uint32_t p : kSmallPrimes) {
    if (*this == BigInt{p}) return true;
    if ((*this % BigInt{p}).is_zero()) return false;
  }

  // Write n-1 as d * 2^s.
  const BigInt n_minus_1 = *this - BigInt{1};
  BigInt d = n_minus_1;
  std::size_t s = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++s;
  }

  const Montgomery mont(*this);
  const BigInt two{2};
  for (int round = 0; round < rounds; ++round) {
    // Base in [2, n-2].
    const BigInt base = two + random_below(rng, *this - BigInt{4} + BigInt{1});
    BigInt x = mont.mod_exp(base, d);
    if (x == BigInt{1} || x == n_minus_1) continue;
    bool composite = true;
    for (std::size_t i = 1; i < s; ++i) {
      x = mont.mod_exp(x, two);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigInt BigInt::generate_prime(SecureRandom& rng, std::size_t bits) {
  if (bits < 16) throw CryptoError("generate_prime: need at least 16 bits");
  for (;;) {
    BigInt candidate = random_bits(rng, bits);
    // Force the second-highest bit (RSA modulus width) and oddness.
    candidate.limbs_[(bits - 2) / 32] |= std::uint32_t{1} << ((bits - 2) % 32);
    candidate.limbs_[0] |= 1u;
    if (candidate.is_probable_prime(rng, 40)) return candidate;
  }
}

// ---------------------------------------------------------------------------
// Montgomery arithmetic

Montgomery::Montgomery(const BigInt& modulus) : modulus_(modulus) {
  if (!modulus.is_odd() || modulus <= BigInt{1}) {
    throw CryptoError("Montgomery: modulus must be odd and > 1");
  }
  k_ = modulus.limbs_.size();

  // n0_inv = -N^-1 mod 2^32 via Newton iteration (5 steps suffice for 32b).
  const std::uint32_t n0 = modulus.limbs_[0];
  std::uint32_t inv = 1;
  for (int i = 0; i < 5; ++i) inv *= 2 - n0 * inv;
  n0_inv_ = ~inv + 1;  // negate mod 2^32

  const BigInt r = BigInt{1} << (32 * k_);
  r_mod_n_ = r % modulus_;
  r2_mod_n_ = (r_mod_n_ * r_mod_n_) % modulus_;
}

void Montgomery::mont_mul(const Limbs& a, const Limbs& b, Limbs& out) const {
  // CIOS: t has k+2 limbs.
  std::vector<std::uint64_t> t(k_ + 2, 0);
  const auto& n = modulus_.limbs_;
  for (std::size_t i = 0; i < k_; ++i) {
    // t += a[i] * b
    std::uint64_t carry = 0;
    const std::uint64_t ai = a[i];
    for (std::size_t j = 0; j < k_; ++j) {
      const std::uint64_t cur = t[j] + ai * b[j] + carry;
      t[j] = cur & 0xffffffffu;
      carry = cur >> 32;
    }
    std::uint64_t cur = t[k_] + carry;
    t[k_] = cur & 0xffffffffu;
    t[k_ + 1] += cur >> 32;

    // m = t[0] * n0_inv mod 2^32 ; t += m * n ; t >>= 32
    const std::uint64_t m =
        (t[0] * n0_inv_) & 0xffffffffu;
    carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const std::uint64_t cur2 = t[j] + m * n[j] + carry;
      t[j] = cur2 & 0xffffffffu;
      carry = cur2 >> 32;
    }
    cur = t[k_] + carry;
    t[k_] = cur & 0xffffffffu;
    t[k_ + 1] += cur >> 32;

    for (std::size_t j = 0; j <= k_; ++j) t[j] = t[j + 1];
    t[k_ + 1] = 0;
  }

  // t < 2N at this point; subtract N if needed.
  bool ge = t[k_] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = k_; i-- > 0;) {
      if (t[i] != n[i]) {
        ge = t[i] > n[i];
        break;
      }
    }
  }
  out.assign(k_, 0);
  if (ge) {
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      const std::int64_t diff =
          static_cast<std::int64_t>(t[i]) - static_cast<std::int64_t>(n[i]) -
          borrow;
      out[i] = static_cast<std::uint32_t>(diff & 0xffffffff);
      borrow = diff < 0 ? 1 : 0;
    }
  } else {
    for (std::size_t i = 0; i < k_; ++i) {
      out[i] = static_cast<std::uint32_t>(t[i]);
    }
  }
}

Montgomery::Limbs Montgomery::to_mont(const BigInt& value) const {
  Limbs v = (value % modulus_).limbs_;
  v.resize(k_, 0);
  Limbs r2 = r2_mod_n_.limbs_;
  r2.resize(k_, 0);
  Limbs out;
  mont_mul(v, r2, out);
  return out;
}

BigInt Montgomery::from_mont(const Limbs& value) const {
  Limbs one(k_, 0);
  one[0] = 1;
  Limbs out;
  mont_mul(value, one, out);
  BigInt result;
  result.limbs_ = out;
  result.trim();
  return result;
}

BigInt Montgomery::mod_exp(const BigInt& base, const BigInt& exponent) const {
  if (exponent.is_zero()) return BigInt{1} % modulus_;
  const Limbs base_m = to_mont(base);
  Limbs acc = r_mod_n_.limbs_;  // 1 in Montgomery form
  acc.resize(k_, 0);
  Limbs tmp;
  for (std::size_t i = exponent.bit_length(); i-- > 0;) {
    mont_mul(acc, acc, tmp);
    acc.swap(tmp);
    if (exponent.bit(i)) {
      mont_mul(acc, base_m, tmp);
      acc.swap(tmp);
    }
  }
  return from_mont(acc);
}

BigInt BigInt::mod_exp(const BigInt& base, const BigInt& exponent,
                       const BigInt& modulus) {
  if (modulus.is_zero()) throw Error("mod_exp: zero modulus");
  if (modulus == BigInt{1}) return BigInt{};
  if (modulus.is_odd()) {
    return Montgomery(modulus).mod_exp(base, exponent);
  }
  // Even modulus: classic left-to-right square and multiply.
  BigInt acc{1};
  const BigInt b = base % modulus;
  for (std::size_t i = exponent.bit_length(); i-- > 0;) {
    acc = (acc * acc) % modulus;
    if (exponent.bit(i)) acc = (acc * b) % modulus;
  }
  return acc;
}

}  // namespace keygraphs::crypto

#include "crypto/sha1.h"

#include <bit>

namespace keygraphs::crypto {

void Sha1::reset() {
  state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u, 0xc3d2e1f0u};
  buffered_ = 0;
  total_bytes_ = 0;
}

void Sha1::compress(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = static_cast<std::uint32_t>(block[4 * i]) << 24 |
           static_cast<std::uint32_t>(block[4 * i + 1]) << 16 |
           static_cast<std::uint32_t>(block[4 * i + 2]) << 8 |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = std::rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdcu;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6u;
    }
    const std::uint32_t temp = std::rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = std::rotl(b, 30);
    b = a;
    a = temp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(BytesView data) {
  total_bytes_ += data.size();
  std::size_t pos = 0;
  if (buffered_ > 0) {
    while (buffered_ < 64 && pos < data.size()) {
      buffer_[buffered_++] = data[pos++];
    }
    if (buffered_ == 64) {
      compress(buffer_.data());
      buffered_ = 0;
    }
  }
  while (data.size() - pos >= 64) {
    compress(data.data() + pos);
    pos += 64;
  }
  while (pos < data.size()) buffer_[buffered_++] = data[pos++];
}

Bytes Sha1::finish() {
  const std::uint64_t bit_length = total_bytes_ * 8;
  const std::uint8_t one = 0x80;
  update(BytesView(&one, 1));
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update(BytesView(&zero, 1));
  std::uint8_t len[8];
  for (int i = 0; i < 8; ++i) {
    len[i] = static_cast<std::uint8_t>(bit_length >> (8 * (7 - i)));
  }
  update(BytesView(len, 8));

  Bytes out(20);
  for (int w = 0; w < 5; ++w) {
    for (int i = 0; i < 4; ++i) {
      out[static_cast<std::size_t>(4 * w + i)] = static_cast<std::uint8_t>(
          state_[static_cast<std::size_t>(w)] >> (8 * (3 - i)));
    }
  }
  reset();
  return out;
}

}  // namespace keygraphs::crypto

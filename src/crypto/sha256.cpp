#include "crypto/sha256.h"

#include <bit>

namespace keygraphs::crypto {

namespace {

// The round constants are the first 32 bits of the fractional parts of the
// cube roots of the first 64 primes, and the initial state is the same for
// square roots of the first 8 primes. Both are derived here with exact
// integer root extraction instead of being transcribed; the FIPS 180-4 test
// vectors in the test suite pin the values.

using U128 = unsigned __int128;

std::uint64_t integer_root(U128 value, int degree) {
  // Largest r with r^degree <= value, by binary search. The callers pass
  // value < 312 * 2^96 with degree >= 2, so the root fits well under 2^40
  // (and hi+1 cannot overflow the midpoint computation).
  std::uint64_t lo = 0, hi = std::uint64_t{1} << 40;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo + 1) / 2;
    // Compute mid^degree with overflow clamping.
    U128 acc = 1;
    bool overflow = false;
    for (int i = 0; i < degree; ++i) {
      if (acc > static_cast<U128>(-1) / mid) {
        overflow = true;
        break;
      }
      acc *= mid;
    }
    if (!overflow && acc <= value) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

// floor(2^32 * frac(p^(1/degree))) for a small prime p.
std::uint32_t root_fraction(std::uint32_t p, int degree) {
  const int shift = 32 * degree;  // root of (p << shift) is 2^32 * p^(1/deg)
  const std::uint64_t scaled =
      integer_root(static_cast<U128>(p) << shift, degree);
  return static_cast<std::uint32_t>(scaled);  // low 32 bits = fraction
}

std::array<std::uint32_t, 64> make_round_constants() {
  constexpr std::uint32_t primes[64] = {
      2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,
      43,  47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101,
      103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167,
      173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229, 233, 239,
      241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311};
  std::array<std::uint32_t, 64> k{};
  for (int i = 0; i < 64; ++i) {
    k[static_cast<std::size_t>(i)] = root_fraction(primes[i], 3);
  }
  return k;
}

const std::array<std::uint32_t, 64>& round_constants() {
  static const auto k = make_round_constants();
  return k;
}

std::array<std::uint32_t, 8> initial_state() {
  constexpr std::uint32_t primes[8] = {2, 3, 5, 7, 11, 13, 17, 19};
  std::array<std::uint32_t, 8> h{};
  for (int i = 0; i < 8; ++i) {
    h[static_cast<std::size_t>(i)] = root_fraction(primes[i], 2);
  }
  return h;
}

}  // namespace

void Sha256::reset() {
  static const auto h0 = initial_state();
  state_ = h0;
  buffered_ = 0;
  total_bytes_ = 0;
}

void Sha256::compress(const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = static_cast<std::uint32_t>(block[4 * i]) << 24 |
           static_cast<std::uint32_t>(block[4 * i + 1]) << 16 |
           static_cast<std::uint32_t>(block[4 * i + 2]) << 8 |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        std::rotr(w[i - 15], 7) ^ std::rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        std::rotr(w[i - 2], 17) ^ std::rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  const auto& k = round_constants();
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 =
        std::rotr(e, 6) ^ std::rotr(e, 11) ^ std::rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 =
        h + s1 + ch + k[static_cast<std::size_t>(i)] + w[i];
    const std::uint32_t s0 =
        std::rotr(a, 2) ^ std::rotr(a, 13) ^ std::rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::update(BytesView data) {
  total_bytes_ += data.size();
  std::size_t pos = 0;
  if (buffered_ > 0) {
    while (buffered_ < 64 && pos < data.size()) {
      buffer_[buffered_++] = data[pos++];
    }
    if (buffered_ == 64) {
      compress(buffer_.data());
      buffered_ = 0;
    }
  }
  while (data.size() - pos >= 64) {
    compress(data.data() + pos);
    pos += 64;
  }
  while (pos < data.size()) buffer_[buffered_++] = data[pos++];
}

Bytes Sha256::finish() {
  const std::uint64_t bit_length = total_bytes_ * 8;
  const std::uint8_t one = 0x80;
  update(BytesView(&one, 1));
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update(BytesView(&zero, 1));
  std::uint8_t len[8];
  for (int i = 0; i < 8; ++i) {
    len[i] = static_cast<std::uint8_t>(bit_length >> (8 * (7 - i)));
  }
  update(BytesView(len, 8));

  Bytes out(32);
  for (int w = 0; w < 8; ++w) {
    for (int i = 0; i < 4; ++i) {
      out[static_cast<std::size_t>(4 * w + i)] = static_cast<std::uint8_t>(
          state_[static_cast<std::size_t>(w)] >> (8 * (3 - i)));
    }
  }
  reset();
  return out;
}

}  // namespace keygraphs::crypto

#include "crypto/md5.h"

#include <bit>
#include <cmath>

namespace keygraphs::crypto {

namespace {

// Per-round left-rotation amounts (RFC 1321).
constexpr int kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(2^32 * |sin(i+1)|), computed rather than transcribed; the
// RFC 1321 test vectors in the test suite pin the values.
const std::array<std::uint32_t, 64>& sine_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 64> t{};
    for (int i = 0; i < 64; ++i) {
      t[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(
          std::floor(std::abs(std::sin(static_cast<double>(i + 1))) *
                     4294967296.0));
    }
    return t;
  }();
  return table;
}

}  // namespace

void Md5::reset() {
  state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u};
  buffered_ = 0;
  total_bytes_ = 0;
}

void Md5::compress(const std::uint8_t* block) {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = static_cast<std::uint32_t>(block[4 * i]) |
           static_cast<std::uint32_t>(block[4 * i + 1]) << 8 |
           static_cast<std::uint32_t>(block[4 * i + 2]) << 16 |
           static_cast<std::uint32_t>(block[4 * i + 3]) << 24;
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  const auto& k = sine_table();
  for (int i = 0; i < 64; ++i) {
    std::uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    const std::uint32_t temp = d;
    d = c;
    c = b;
    b += std::rotl(a + f + k[static_cast<std::size_t>(i)] + m[g],
                   kShift[i]);
    a = temp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::update(BytesView data) {
  total_bytes_ += data.size();
  std::size_t pos = 0;
  if (buffered_ > 0) {
    while (buffered_ < 64 && pos < data.size()) {
      buffer_[buffered_++] = data[pos++];
    }
    if (buffered_ == 64) {
      compress(buffer_.data());
      buffered_ = 0;
    }
  }
  while (data.size() - pos >= 64) {
    compress(data.data() + pos);
    pos += 64;
  }
  while (pos < data.size()) buffer_[buffered_++] = data[pos++];
}

Bytes Md5::finish() {
  const std::uint64_t bit_length = total_bytes_ * 8;
  const std::uint8_t one = 0x80;
  update(BytesView(&one, 1));
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update(BytesView(&zero, 1));
  std::uint8_t len[8];
  for (int i = 0; i < 8; ++i) {
    len[i] = static_cast<std::uint8_t>(bit_length >> (8 * i));
  }
  update(BytesView(len, 8));

  Bytes out(16);
  for (int w = 0; w < 4; ++w) {
    for (int i = 0; i < 4; ++i) {
      out[static_cast<std::size_t>(4 * w + i)] =
          static_cast<std::uint8_t>(state_[static_cast<std::size_t>(w)] >>
                                    (8 * i));
    }
  }
  reset();
  return out;
}

}  // namespace keygraphs::crypto

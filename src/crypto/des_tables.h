// FIPS 46-3 tables, the DES key schedule, and the fused lookup tables the
// fast kernel runs on — all shared with the reference implementation.
//
// The bit-selection tables below are the standard's own (1-based numbering,
// bit 1 = MSB of the block). The fast kernel never applies them bit by bit:
// at startup they are fused into
//
//   sp[b][v]  — S-box b on the 6-bit group v (row/column decode folded in),
//               placed at its nibble position and pushed through P, as one
//               32-bit word: the whole f-function body is 8 loads + XORs;
//   ip/fp[b][v] — the contribution of input byte b with value v to the
//               initial/final permutation: a 64-bit permutation is 8 loads
//               XORed together instead of 64 single-bit moves.
//
// The expansion E needs no table at all: its 6-bit groups are consecutive
// windows of R rotated right by one (verified against kDesExpansion by the
// kernel cross-check test).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace keygraphs::crypto {

extern const std::uint8_t kDesInitialPermutation[64];
extern const std::uint8_t kDesFinalPermutation[64];
extern const std::uint8_t kDesExpansion[48];
extern const std::uint8_t kDesPermutationP[32];
extern const std::uint8_t kDesPermutedChoice1[56];
extern const std::uint8_t kDesPermutedChoice2[48];
extern const std::uint8_t kDesLeftShifts[16];
extern const std::uint8_t kDesSBox[8][64];

/// Applies a FIPS bit-selection table: output bit i (1-based, MSB first) is
/// input bit table[i-1] of an `in_bits`-wide value. `length` is the table
/// (= output) width.
std::uint64_t des_permute(std::uint64_t in, const std::uint8_t* table,
                          std::size_t length, int in_bits);

/// The 16 48-bit subkeys for an 8-byte key (parity bits ignored, as in
/// FIPS 46-3). Throws CryptoError on any other key size.
std::array<std::uint64_t, 16> des_key_schedule(BytesView key);

struct DesTables {
  std::array<std::array<std::uint32_t, 64>, 8> sp{};
  std::array<std::array<std::uint64_t, 256>, 8> ip{};
  std::array<std::array<std::uint64_t, 256>, 8> fp{};
};

/// The shared fused tables, built on first use (thread-safe magic static).
const DesTables& des_tables();

std::uint64_t load_be64(const std::uint8_t* p);
void store_be64(std::uint64_t v, std::uint8_t* p);

}  // namespace keygraphs::crypto

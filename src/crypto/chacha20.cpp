#include "crypto/chacha20.h"

#include <bit>

#include "common/error.h"
#include "crypto/sha256.h"

namespace keygraphs::crypto {

namespace {

std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

}  // namespace

ChaCha20::ChaCha20(BytesView key, BytesView nonce, std::uint32_t counter) {
  if (key.size() != kKeySize) throw CryptoError("ChaCha20: key must be 32B");
  if (nonce.size() != kNonceSize) {
    throw CryptoError("ChaCha20: nonce must be 12B");
  }
  // "expand 32-byte k" constants.
  state_[0] = 0x61707865u;
  state_[1] = 0x3320646eu;
  state_[2] = 0x79622d32u;
  state_[3] = 0x6b206574u;
  for (int i = 0; i < 8; ++i) state_[4 + i] = load_le32(key.data() + 4 * i);
  state_[12] = counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = load_le32(nonce.data() + 4 * i);
}

void ChaCha20::quarter_round(std::uint32_t& a, std::uint32_t& b,
                             std::uint32_t& c, std::uint32_t& d) {
  a += b;
  d = std::rotl(d ^ a, 16);
  c += d;
  b = std::rotl(b ^ c, 12);
  a += b;
  d = std::rotl(d ^ a, 8);
  c += d;
  b = std::rotl(b ^ c, 7);
}

void ChaCha20::next_block(std::uint8_t out[kBlockSize]) {
  std::array<std::uint32_t, 16> x = state_;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t word = x[static_cast<std::size_t>(i)] +
                               state_[static_cast<std::size_t>(i)];
    out[4 * i + 0] = static_cast<std::uint8_t>(word);
    out[4 * i + 1] = static_cast<std::uint8_t>(word >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(word >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(word >> 24);
  }
  ++state_[12];
}

ChaCha20Drbg::ChaCha20Drbg(BytesView seed)
    : stream_(
          [&] {
            if (seed.empty()) throw CryptoError("DRBG: empty seed");
            Sha256 hash;
            hash.update(seed);
            return hash.finish();
          }(),
          Bytes(ChaCha20::kNonceSize, 0x00)) {}

void ChaCha20Drbg::refill() {
  stream_.next_block(block_.data());
  used_ = 0;
}

void ChaCha20Drbg::fill(std::uint8_t* out, std::size_t n) {
  while (n > 0) {
    if (used_ == block_.size()) refill();
    const std::size_t take = std::min(n, block_.size() - used_);
    for (std::size_t i = 0; i < take; ++i) out[i] = block_[used_ + i];
    out += take;
    used_ += take;
    n -= take;
  }
}

}  // namespace keygraphs::crypto

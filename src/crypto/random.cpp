#include "crypto/random.h"

#include <cstring>
#include <random>
#include <vector>

#include "common/error.h"

namespace keygraphs::crypto {

namespace {

Bytes os_seed() {
  std::random_device device;
  Bytes seed(32);
  for (std::size_t i = 0; i < seed.size(); i += 4) {
    const std::uint32_t word = device();
    for (std::size_t j = 0; j < 4 && i + j < seed.size(); ++j) {
      seed[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
    }
  }
  return seed;
}

Bytes u64_seed(std::uint64_t seed) {
  Bytes out(8);
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(seed >> (8 * i));
  }
  return out;
}

// Capture/tape registries are thread-local and keyed by instance: draws
// from other threads never touch them, which is what makes a captured tape
// exactly the plan-phase draws even while off-lock resyncs share the rng.
struct CaptureEntry {
  const SecureRandom* rng;
  Bytes* buffer;
};
struct TapeEntry {
  const SecureRandom* rng;
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos;
};

thread_local std::vector<CaptureEntry> t_captures;
thread_local std::vector<TapeEntry> t_tapes;

TapeEntry* tape_for(const SecureRandom* rng) {
  for (TapeEntry& tape : t_tapes) {
    if (tape.rng == rng) return &tape;
  }
  return nullptr;
}

}  // namespace

SecureRandom::SecureRandom()
    : drbg_(os_seed()), mutex_(std::make_unique<std::mutex>()) {}

SecureRandom::SecureRandom(std::uint64_t seed)
    : drbg_(u64_seed(seed)), mutex_(std::make_unique<std::mutex>()) {}

void SecureRandom::generate(std::uint8_t* out, std::size_t n) {
  if (TapeEntry* tape = tape_for(this)) {
    if (tape->size - tape->pos < n) {
      throw Error("SecureRandom: replay tape exhausted");
    }
    std::memcpy(out, tape->data + tape->pos, n);
    tape->pos += n;
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(*mutex_);
    drbg_.fill(out, n);
  }
  for (CaptureEntry& capture : t_captures) {
    if (capture.rng == this) {
      capture.buffer->insert(capture.buffer->end(), out, out + n);
    }
  }
}

Bytes SecureRandom::bytes(std::size_t n) {
  Bytes out(n);
  generate(out.data(), n);
  return out;
}

void SecureRandom::fill(std::uint8_t* out, std::size_t n) {
  generate(out, n);
}

std::uint64_t SecureRandom::uniform(std::uint64_t bound) {
  if (bound == 0) throw Error("SecureRandom::uniform: zero bound");
  // Rejection sampling to avoid modulo bias. Each iteration consumes
  // exactly 8 bytes, so a capture replays the same number of rejections.
  const std::uint64_t limit = ~std::uint64_t{0} - ~std::uint64_t{0} % bound;
  for (;;) {
    std::uint8_t raw[8];
    generate(raw, 8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(raw[i]) << (8 * i);
    }
    if (v < limit) return v % bound;
  }
}

double SecureRandom::uniform_unit() {
  // 53 random bits into the double mantissa.
  const std::uint64_t v = uniform(std::uint64_t{1} << 53);
  return static_cast<double>(v) / static_cast<double>(std::uint64_t{1} << 53);
}

RngCapture::RngCapture(SecureRandom& rng) : rng_(&rng), active_(true) {
  for (const CaptureEntry& capture : t_captures) {
    if (capture.rng == rng_) {
      throw Error("RngCapture: capture already active for this rng");
    }
  }
  t_captures.push_back(CaptureEntry{rng_, &buffer_});
}

RngCapture::~RngCapture() {
  if (!active_) return;
  for (auto it = t_captures.begin(); it != t_captures.end(); ++it) {
    if (it->rng == rng_) {
      t_captures.erase(it);
      break;
    }
  }
}

Bytes RngCapture::take() {
  if (active_) {
    for (auto it = t_captures.begin(); it != t_captures.end(); ++it) {
      if (it->rng == rng_) {
        t_captures.erase(it);
        break;
      }
    }
    active_ = false;
  }
  return std::move(buffer_);
}

RngTape::RngTape(SecureRandom& rng, BytesView tape) : rng_(&rng) {
  if (tape_for(rng_) != nullptr) {
    throw Error("RngTape: tape already active for this rng");
  }
  t_tapes.push_back(TapeEntry{rng_, tape.data(), tape.size(), 0});
}

RngTape::~RngTape() {
  for (auto it = t_tapes.begin(); it != t_tapes.end(); ++it) {
    if (it->rng == rng_) {
      t_tapes.erase(it);
      break;
    }
  }
}

std::size_t RngTape::remaining() const noexcept {
  const TapeEntry* tape = tape_for(rng_);
  return tape == nullptr ? 0 : tape->size - tape->pos;
}

}  // namespace keygraphs::crypto

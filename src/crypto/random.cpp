#include "crypto/random.h"

#include <random>

#include "common/error.h"

namespace keygraphs::crypto {

namespace {

Bytes os_seed() {
  std::random_device device;
  Bytes seed(32);
  for (std::size_t i = 0; i < seed.size(); i += 4) {
    const std::uint32_t word = device();
    for (std::size_t j = 0; j < 4 && i + j < seed.size(); ++j) {
      seed[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
    }
  }
  return seed;
}

Bytes u64_seed(std::uint64_t seed) {
  Bytes out(8);
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(seed >> (8 * i));
  }
  return out;
}

}  // namespace

SecureRandom::SecureRandom()
    : drbg_(os_seed()), mutex_(std::make_unique<std::mutex>()) {}

SecureRandom::SecureRandom(std::uint64_t seed)
    : drbg_(u64_seed(seed)), mutex_(std::make_unique<std::mutex>()) {}

Bytes SecureRandom::bytes(std::size_t n) {
  Bytes out(n);
  const std::lock_guard<std::mutex> lock(*mutex_);
  drbg_.fill(out.data(), n);
  return out;
}

void SecureRandom::fill(std::uint8_t* out, std::size_t n) {
  const std::lock_guard<std::mutex> lock(*mutex_);
  drbg_.fill(out, n);
}

std::uint64_t SecureRandom::uniform(std::uint64_t bound) {
  if (bound == 0) throw Error("SecureRandom::uniform: zero bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - ~std::uint64_t{0} % bound;
  const std::lock_guard<std::mutex> lock(*mutex_);
  for (;;) {
    std::uint8_t raw[8];
    drbg_.fill(raw, 8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(raw[i]) << (8 * i);
    }
    if (v < limit) return v % bound;
  }
}

double SecureRandom::uniform_unit() {
  // 53 random bits into the double mantissa.
  const std::uint64_t v = uniform(std::uint64_t{1} << 53);
  return static_cast<double>(v) / static_cast<double>(std::uint64_t{1} << 53);
}

}  // namespace keygraphs::crypto

#include "crypto/reference.h"

#include "common/error.h"
#include "crypto/aes_tables.h"
#include "crypto/des_tables.h"

namespace keygraphs::crypto {

namespace {

std::uint32_t load_be32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 |
         static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 |
         static_cast<std::uint32_t>(p[3]);
}

std::uint32_t sub_word(std::uint32_t w) {
  const auto& s = aes_tables().sbox;
  return static_cast<std::uint32_t>(s[(w >> 24) & 0xff]) << 24 |
         static_cast<std::uint32_t>(s[(w >> 16) & 0xff]) << 16 |
         static_cast<std::uint32_t>(s[(w >> 8) & 0xff]) << 8 |
         static_cast<std::uint32_t>(s[w & 0xff]);
}

std::uint32_t rot_word(std::uint32_t w) { return (w << 8) | (w >> 24); }

using State = std::array<std::uint8_t, 16>;  // column-major, as in FIPS 197

void add_round_key(State& st, const std::uint32_t* rk) {
  for (int c = 0; c < 4; ++c) {
    const std::uint32_t w = rk[c];
    st[static_cast<std::size_t>(4 * c + 0)] ^=
        static_cast<std::uint8_t>(w >> 24);
    st[static_cast<std::size_t>(4 * c + 1)] ^=
        static_cast<std::uint8_t>(w >> 16);
    st[static_cast<std::size_t>(4 * c + 2)] ^= static_cast<std::uint8_t>(w >> 8);
    st[static_cast<std::size_t>(4 * c + 3)] ^= static_cast<std::uint8_t>(w);
  }
}

void sub_bytes(State& st, bool inverse) {
  const auto& table = inverse ? aes_tables().inv_sbox : aes_tables().sbox;
  for (auto& b : st) b = table[b];
}

void shift_rows(State& st, bool inverse) {
  State out;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      const int src_col = inverse ? (c - r + 4) % 4 : (c + r) % 4;
      out[static_cast<std::size_t>(4 * c + r)] =
          st[static_cast<std::size_t>(4 * src_col + r)];
    }
  }
  st = out;
}

void mix_columns(State& st, bool inverse) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = &st[static_cast<std::size_t>(4 * c)];
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    if (!inverse) {
      col[0] = gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3;
      col[1] = a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3;
      col[2] = a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3);
      col[3] = gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2);
    } else {
      col[0] = gf_mul(a0, 14) ^ gf_mul(a1, 11) ^ gf_mul(a2, 13) ^ gf_mul(a3, 9);
      col[1] = gf_mul(a0, 9) ^ gf_mul(a1, 14) ^ gf_mul(a2, 11) ^ gf_mul(a3, 13);
      col[2] = gf_mul(a0, 13) ^ gf_mul(a1, 9) ^ gf_mul(a2, 14) ^ gf_mul(a3, 11);
      col[3] = gf_mul(a0, 11) ^ gf_mul(a1, 13) ^ gf_mul(a2, 9) ^ gf_mul(a3, 14);
    }
  }
}

std::uint32_t reference_feistel(std::uint32_t half, std::uint64_t subkey) {
  const std::uint64_t expanded =
      des_permute(static_cast<std::uint64_t>(half), kDesExpansion, 48, 32) ^
      subkey;
  std::uint32_t sbox_out = 0;
  for (int box = 0; box < 8; ++box) {
    const auto six =
        static_cast<std::uint8_t>((expanded >> (42 - 6 * box)) & 0x3f);
    const int row = ((six & 0x20) >> 4) | (six & 0x01);
    const int col = (six >> 1) & 0x0f;
    sbox_out = (sbox_out << 4) | kDesSBox[box][row * 16 + col];
  }
  return static_cast<std::uint32_t>(des_permute(
      static_cast<std::uint64_t>(sbox_out), kDesPermutationP, 32, 32));
}

}  // namespace

ReferenceAes128::ReferenceAes128(BytesView key) {
  if (key.size() != kKeySize) {
    throw CryptoError("AES-128: key must be 16 bytes");
  }
  for (int i = 0; i < 4; ++i) {
    round_keys_[static_cast<std::size_t>(i)] = load_be32(key.data() + 4 * i);
  }
  std::uint8_t rcon = 0x01;
  for (std::size_t i = 4; i < round_keys_.size(); ++i) {
    std::uint32_t temp = round_keys_[i - 1];
    if (i % 4 == 0) {
      temp = sub_word(rot_word(temp)) ^
             (static_cast<std::uint32_t>(rcon) << 24);
      rcon = gf_mul(rcon, 2);
    }
    round_keys_[i] = round_keys_[i - 4] ^ temp;
  }
}

void ReferenceAes128::encrypt_block(const std::uint8_t* in,
                                    std::uint8_t* out) const {
  State st;
  for (int i = 0; i < 16; ++i) st[static_cast<std::size_t>(i)] = in[i];
  add_round_key(st, &round_keys_[0]);
  for (int round = 1; round < kRounds; ++round) {
    sub_bytes(st, false);
    shift_rows(st, false);
    mix_columns(st, false);
    add_round_key(st, &round_keys_[static_cast<std::size_t>(4 * round)]);
  }
  sub_bytes(st, false);
  shift_rows(st, false);
  add_round_key(st, &round_keys_[4 * kRounds]);
  for (int i = 0; i < 16; ++i) out[i] = st[static_cast<std::size_t>(i)];
}

void ReferenceAes128::decrypt_block(const std::uint8_t* in,
                                    std::uint8_t* out) const {
  State st;
  for (int i = 0; i < 16; ++i) st[static_cast<std::size_t>(i)] = in[i];
  add_round_key(st, &round_keys_[4 * kRounds]);
  for (int round = kRounds - 1; round >= 1; --round) {
    shift_rows(st, true);
    sub_bytes(st, true);
    add_round_key(st, &round_keys_[static_cast<std::size_t>(4 * round)]);
    mix_columns(st, true);
  }
  shift_rows(st, true);
  sub_bytes(st, true);
  add_round_key(st, &round_keys_[0]);
  for (int i = 0; i < 16; ++i) out[i] = st[static_cast<std::size_t>(i)];
}

ReferenceDes::ReferenceDes(BytesView key)
    : round_keys_(des_key_schedule(key)) {}

void ReferenceDes::crypt_block(const std::uint8_t* in, std::uint8_t* out,
                               bool decrypt) const {
  const std::uint64_t block =
      des_permute(load_be64(in), kDesInitialPermutation, 64, 64);
  auto left = static_cast<std::uint32_t>(block >> 32);
  auto right = static_cast<std::uint32_t>(block);
  for (int round = 0; round < 16; ++round) {
    const std::size_t k =
        static_cast<std::size_t>(decrypt ? 15 - round : round);
    const std::uint32_t next = left ^ reference_feistel(right, round_keys_[k]);
    left = right;
    right = next;
  }
  // Final swap: pre-output is R16 || L16.
  const std::uint64_t preout =
      (static_cast<std::uint64_t>(right) << 32) | left;
  store_be64(des_permute(preout, kDesFinalPermutation, 64, 64), out);
}

void ReferenceDes::encrypt_block(const std::uint8_t* in,
                                 std::uint8_t* out) const {
  crypt_block(in, out, /*decrypt=*/false);
}

void ReferenceDes::decrypt_block(const std::uint8_t* in,
                                 std::uint8_t* out) const {
  crypt_block(in, out, /*decrypt=*/true);
}

}  // namespace keygraphs::crypto

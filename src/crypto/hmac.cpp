#include "crypto/hmac.h"

namespace keygraphs::crypto {

Hmac::Hmac(DigestAlgorithm algorithm, BytesView key) : algorithm_(algorithm) {
  auto digest = make_digest(algorithm);
  const std::size_t block = digest->block_size();

  Bytes normalized(key.begin(), key.end());
  if (normalized.size() > block) {
    digest->update(normalized);
    normalized = digest->finish();
  }
  normalized.resize(block, 0x00);

  inner_pad_.resize(block);
  outer_pad_.resize(block);
  for (std::size_t i = 0; i < block; ++i) {
    inner_pad_[i] = normalized[i] ^ 0x36;
    outer_pad_[i] = normalized[i] ^ 0x5c;
  }
}

Bytes Hmac::mac(BytesView message) const {
  auto digest = make_digest(algorithm_);
  digest->update(inner_pad_);
  digest->update(message);
  const Bytes inner = digest->finish();
  digest->update(outer_pad_);
  digest->update(inner);
  return digest->finish();
}

bool Hmac::verify(BytesView message, BytesView tag) const {
  return constant_time_equal(mac(message), tag);
}

std::size_t Hmac::tag_size() const noexcept {
  return digest_size(algorithm_);
}

}  // namespace keygraphs::crypto

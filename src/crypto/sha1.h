// SHA-1 (FIPS 180-4), provided for the digest ablation benchmark.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/digest.h"

namespace keygraphs::crypto {

class Sha1 final : public Digest {
 public:
  Sha1() { reset(); }

  [[nodiscard]] std::size_t digest_size() const noexcept override {
    return 20;
  }
  [[nodiscard]] std::size_t block_size() const noexcept override { return 64; }
  [[nodiscard]] std::string name() const override { return "SHA-1"; }

  void update(BytesView data) override;
  Bytes finish() override;
  [[nodiscard]] std::unique_ptr<Digest> clone() const override {
    return std::make_unique<Sha1>();
  }

 private:
  void reset();
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace keygraphs::crypto

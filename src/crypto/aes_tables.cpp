#include "crypto/aes_tables.h"

#include <bit>

namespace keygraphs::crypto {

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t result = 0;
  while (b != 0) {
    if (b & 1) result ^= a;
    const bool carry = (a & 0x80) != 0;
    a = static_cast<std::uint8_t>(a << 1);
    if (carry) a ^= 0x1b;
    b >>= 1;
  }
  return result;
}

namespace {

AesTables build_tables() {
  AesTables t;
  for (int x = 0; x < 256; ++x) {
    // Multiplicative inverse (0 maps to 0), then the affine transform.
    std::uint8_t v = 0;
    if (x != 0) {
      for (int y = 1; y < 256; ++y) {
        if (gf_mul(static_cast<std::uint8_t>(x),
                   static_cast<std::uint8_t>(y)) == 1) {
          v = static_cast<std::uint8_t>(y);
          break;
        }
      }
    }
    auto rotl8 = [](std::uint8_t b, int n) {
      return static_cast<std::uint8_t>((b << n) | (b >> (8 - n)));
    };
    const std::uint8_t s = static_cast<std::uint8_t>(
        v ^ rotl8(v, 1) ^ rotl8(v, 2) ^ rotl8(v, 3) ^ rotl8(v, 4) ^ 0x63);
    t.sbox[static_cast<std::size_t>(x)] = s;
    t.inv_sbox[s] = static_cast<std::uint8_t>(x);
  }
  for (int x = 0; x < 256; ++x) {
    const std::uint8_t s = t.sbox[static_cast<std::size_t>(x)];
    const std::uint8_t is = t.inv_sbox[static_cast<std::size_t>(x)];
    t.te[0][static_cast<std::size_t>(x)] =
        static_cast<std::uint32_t>(gf_mul(s, 2)) << 24 |
        static_cast<std::uint32_t>(s) << 16 |
        static_cast<std::uint32_t>(s) << 8 |
        static_cast<std::uint32_t>(gf_mul(s, 3));
    t.td[0][static_cast<std::size_t>(x)] =
        static_cast<std::uint32_t>(gf_mul(is, 14)) << 24 |
        static_cast<std::uint32_t>(gf_mul(is, 9)) << 16 |
        static_cast<std::uint32_t>(gf_mul(is, 13)) << 8 |
        static_cast<std::uint32_t>(gf_mul(is, 11));
    for (int i = 1; i < 4; ++i) {
      t.te[static_cast<std::size_t>(i)][static_cast<std::size_t>(x)] =
          std::rotr(t.te[0][static_cast<std::size_t>(x)], 8 * i);
      t.td[static_cast<std::size_t>(i)][static_cast<std::size_t>(x)] =
          std::rotr(t.td[0][static_cast<std::size_t>(x)], 8 * i);
    }
  }
  return t;
}

}  // namespace

const AesTables& aes_tables() {
  static const AesTables tables = build_tables();
  return tables;
}

}  // namespace keygraphs::crypto

// Abstract block-cipher interface.
//
// The paper's prototype encrypts keys with DES-CBC from CryptoLib; we provide
// DES (for fidelity) and AES-128 (as the modern ablation) behind one
// interface so the rekeying layer and the benchmarks can swap ciphers from a
// configuration string, exactly like the paper's server specification file.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/bytes.h"

namespace keygraphs::crypto {

/// Kernel identity, for dispatch *below* the virtual-call granularity:
/// CbcCipher::encrypt_many_into interleaves the independent streams of a
/// batch when every stream's cipher shares a fused multi-block kernel
/// (AES-NI rounds pipeline across 4-8 messages), and falls back to
/// sequential encrypt_block calls otherwise. Purely a performance hint —
/// output bytes are identical on every kernel.
enum class BlockKernel : std::uint8_t {
  kGeneric = 0,  ///< one virtual encrypt_block call per block
  kAesNi = 1,    ///< crypto/aes_aesni.h hardware kernel
};

/// A raw block cipher: fixed block and key size, one-block ECB primitives.
/// Implementations are immutable after construction (key schedule is built
/// in the constructor), so a const instance is safe to share across threads.
class BlockCipher {
 public:
  virtual ~BlockCipher() = default;

  /// Which fused kernel (if any) this instance can take part in.
  [[nodiscard]] virtual BlockKernel kernel() const noexcept {
    return BlockKernel::kGeneric;
  }

  /// Block size in bytes (8 for DES, 16 for AES-128).
  [[nodiscard]] virtual std::size_t block_size() const noexcept = 0;

  /// Key size in bytes (8 for DES, 16 for AES-128).
  [[nodiscard]] virtual std::size_t key_size() const noexcept = 0;

  /// Human-readable algorithm name ("DES", "AES-128").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Encrypt exactly one block. `in` and `out` may alias.
  virtual void encrypt_block(const std::uint8_t* in,
                             std::uint8_t* out) const = 0;

  /// Decrypt exactly one block. `in` and `out` may alias.
  virtual void decrypt_block(const std::uint8_t* in,
                             std::uint8_t* out) const = 0;
};

/// Identifies a cipher in configuration and on the wire.
enum class CipherAlgorithm : std::uint8_t {
  kDes = 1,
  kAes128 = 2,
  kDes3 = 3,
};

/// Factory: construct a keyed cipher. Throws CryptoError on bad key size.
std::unique_ptr<BlockCipher> make_cipher(CipherAlgorithm algorithm,
                                         BytesView key);

/// Key size in bytes required by `algorithm`.
std::size_t cipher_key_size(CipherAlgorithm algorithm);

/// Block (and IV) size in bytes of `algorithm`, without keying a cipher.
std::size_t cipher_block_size(CipherAlgorithm algorithm);

/// Name for logs and bench tables.
std::string cipher_name(CipherAlgorithm algorithm);

}  // namespace keygraphs::crypto

// CBC mode with PKCS#7 padding over any BlockCipher.
//
// The paper encrypts new keys with DES-CBC; every rekey payload item in this
// reproduction is one CBC encryption of the new key bytes under an existing
// key, with a fresh random IV prepended to the ciphertext.
#pragma once

#include <memory>
#include <span>

#include "crypto/block_cipher.h"

namespace keygraphs::crypto {

class SecureRandom;

/// Stateless CBC helpers bound to a keyed block cipher.
class CbcCipher {
 public:
  /// Takes shared ownership of a keyed cipher.
  explicit CbcCipher(std::shared_ptr<const BlockCipher> cipher);

  /// Encrypts `plaintext` with a random IV drawn from `rng`.
  /// Output layout: IV || ciphertext blocks. Always at least two blocks
  /// (PKCS#7 pads even exact multiples).
  [[nodiscard]] Bytes encrypt(BytesView plaintext, SecureRandom& rng) const;

  /// Encrypts with a caller-supplied IV (used by deterministic tests).
  /// IV must be exactly one block. Output layout: IV || ciphertext.
  [[nodiscard]] Bytes encrypt_with_iv(BytesView plaintext, BytesView iv) const;

  /// Zero-allocation encrypt: writes IV || ciphertext into caller-owned
  /// `out`, which must hold exactly ciphertext_size(plaintext.size())
  /// bytes. Padding is streamed straight into `out`'s final block — no
  /// padded plaintext copy is ever made, so there is nothing to wipe.
  /// `out` must not alias `plaintext` or `iv`.
  void encrypt_into(BytesView plaintext, BytesView iv, std::uint8_t* out) const;

  /// One independent encryption of a multi-buffer batch: the same
  /// contract as encrypt_into on `cbc`, with `out` sized to
  /// cbc->ciphertext_size(plaintext.size()).
  struct StreamOp {
    const CbcCipher* cbc = nullptr;
    BytesView plaintext;
    BytesView iv;
    std::uint8_t* out = nullptr;
  };

  /// Encrypts every op of a batch, byte-identical to calling
  /// op.cbc->encrypt_into(op.plaintext, op.iv, op.out) in order. Runs of
  /// consecutive ops whose ciphers share the AES-NI kernel are interleaved
  /// up to kAesNiMaxStreams at a time (the CBC chain is serial within one
  /// message but independent messages pipeline); everything else falls
  /// back to sequential encrypt_into. Outputs must not overlap inputs.
  static void encrypt_many_into(std::span<const StreamOp> ops);

  /// Inverse of encrypt(); throws CryptoError on bad length or padding.
  [[nodiscard]] Bytes decrypt(BytesView iv_and_ciphertext) const;

  /// Zero-allocation decrypt into caller-owned `out` (at least
  /// iv_and_ciphertext.size() - block_size bytes; `out` must not alias the
  /// input). Returns the unpadded plaintext length; the padding tail it
  /// wrote past that length is wiped before returning. On bad padding the
  /// whole written range is wiped before CryptoError is thrown.
  std::size_t decrypt_into(BytesView iv_and_ciphertext,
                           std::uint8_t* out) const;

  /// Ciphertext size (including IV) for a plaintext of `plaintext_size`.
  [[nodiscard]] std::size_t ciphertext_size(std::size_t plaintext_size) const;

  [[nodiscard]] const BlockCipher& cipher() const noexcept { return *cipher_; }

 private:
  std::shared_ptr<const BlockCipher> cipher_;
};

}  // namespace keygraphs::crypto

#include "crypto/cpu_features.h"

#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

#include "common/error.h"
#include "crypto/aes_aesni.h"
#include "telemetry/metrics.h"

namespace keygraphs::crypto {

namespace {

CpuFeatures probe() {
  CpuFeatures features;
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) != 0) {
    features.aesni = (ecx & (1u << 25)) != 0;
    features.ssse3 = (ecx & (1u << 9)) != 0;
    features.sse41 = (ecx & (1u << 19)) != 0;
    features.pclmul = (ecx & (1u << 1)) != 0;
    features.sse2 = (edx & (1u << 26)) != 0;
  }
#endif
  features.aesni_compiled = aesni_kernel_compiled();
  const char* disable = std::getenv("KG_DISABLE_AESNI");
  features.disabled_by_env =
      disable != nullptr && *disable != '\0' &&
      !(disable[0] == '0' && disable[1] == '\0');
  return features;
}

/// Dispatch state: -1 = follow the probe, 0 = forced table, 1 = forced
/// hardware. Relaxed atomics — the decision is a hint read on cipher
/// construction, never a synchronization point.
std::atomic<int> g_override{-1};

telemetry::Gauge& kernel_gauge() {
  static telemetry::Gauge& gauge = telemetry::Registry::global().gauge(
      "crypto.kernel",
      "AES dispatch choice: 1 = AES-NI hardware kernel, 0 = table fallback");
  return gauge;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = probe();
  return features;
}

bool aesni_dispatch_enabled() {
  const int forced = g_override.load(std::memory_order_relaxed);
  const CpuFeatures& features = cpu_features();
  const bool enabled = forced >= 0
                           ? forced != 0
                           : features.aesni_usable() &&
                                 !features.disabled_by_env;
  kernel_gauge().set(enabled ? 1 : 0);
  return enabled;
}

void override_aesni_dispatch(std::optional<bool> enabled) {
  if (enabled.has_value() && *enabled && !cpu_features().aesni_usable()) {
    throw CryptoError(
        "override_aesni_dispatch: AES-NI kernel not usable on this host");
  }
  g_override.store(enabled.has_value() ? (*enabled ? 1 : 0) : -1,
                   std::memory_order_relaxed);
  (void)aesni_dispatch_enabled();  // refresh the gauge
}

const char* aes_kernel_name() {
  return aesni_dispatch_enabled() ? "aesni" : "table";
}

std::string cpu_features_json() {
  const CpuFeatures& features = cpu_features();
  const auto flag = [](bool value) { return value ? "true" : "false"; };
  std::string json = "{\"aesni\":";
  json += flag(features.aesni);
  json += ",\"sse2\":";
  json += flag(features.sse2);
  json += ",\"ssse3\":";
  json += flag(features.ssse3);
  json += ",\"sse4_1\":";
  json += flag(features.sse41);
  json += ",\"pclmul\":";
  json += flag(features.pclmul);
  json += ",\"aesni_compiled\":";
  json += flag(features.aesni_compiled);
  json += ",\"disabled_by_env\":";
  json += flag(features.disabled_by_env);
  json += ",\"dispatch\":\"";
  json += aes_kernel_name();
  json += "\"}";
  return json;
}

}  // namespace keygraphs::crypto

#include "crypto/aes_aesni.h"

#include <cstring>

#include "common/error.h"
#include "crypto/cpu_features.h"

// KG_AESNI_BUILD is defined (by src/CMakeLists.txt) only when the target is
// x86 and the compiler accepted -maes: this file is the single translation
// unit carrying AES-NI instructions, and nothing here executes unless the
// runtime CPUID probe confirmed the CPU has them.
#if defined(KG_AESNI_BUILD)
#include <wmmintrin.h>  // AESENC/AESDEC/AESKEYGENASSIST/AESIMC
#endif

namespace keygraphs::crypto {

bool aesni_kernel_compiled() noexcept {
#if defined(KG_AESNI_BUILD)
  return true;
#else
  return false;
#endif
}

bool Aes128Ni::supported() noexcept {
  return cpu_features().aesni_usable();
}

#if defined(KG_AESNI_BUILD)

namespace {

/// The FIPS 197 key-expansion step in SSE form: AESKEYGENASSIST computed
/// RotWord+SubWord+rcon into the high dword of `assist`; broadcasting it
/// and folding in the three shifted copies of the previous round key yields
/// the next four schedule words at once.
inline __m128i expand_step(__m128i key, __m128i assist) {
  assist = _mm_shuffle_epi32(assist, 0xff);
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  return _mm_xor_si128(key, assist);
}

/// Ten AES rounds for M interleaved independent states, each with its own
/// schedule. M is a compile-time constant so the loops fully unroll and
/// the states stay in XMM registers; with 4-8 states in flight the AESENC
/// latency of each is hidden behind the others' issue slots.
template <int M>
inline void encrypt_rounds(__m128i* x, const __m128i* const* rk) {
  for (int j = 0; j < M; ++j) {
    x[j] = _mm_xor_si128(x[j], _mm_load_si128(rk[j]));
  }
  for (int round = 1; round < Aes128Ni::kRounds; ++round) {
    for (int j = 0; j < M; ++j) {
      x[j] = _mm_aesenc_si128(x[j], _mm_load_si128(rk[j] + round));
    }
  }
  for (int j = 0; j < M; ++j) {
    x[j] = _mm_aesenclast_si128(x[j], _mm_load_si128(rk[j] + Aes128Ni::kRounds));
  }
}

}  // namespace

Aes128Ni::Aes128Ni(BytesView key) {
  if (key.size() != kKeySize) {
    throw CryptoError("AES-128-ni: key must be 16 bytes");
  }
  if (!supported()) {
    throw CryptoError("AES-128-ni: CPU does not support AES-NI");
  }
  auto* enc = reinterpret_cast<__m128i*>(enc_keys_.data());
  __m128i k = _mm_loadu_si128(reinterpret_cast<const __m128i*>(key.data()));
  _mm_store_si128(enc, k);
  // AESKEYGENASSIST takes its round constant as an immediate, hence the
  // unrolled ladder (rcon doubles in GF(2^8): 0x1b, 0x36 past 0x80).
#define KG_AES_EXPAND(index, rcon)                              \
  k = expand_step(k, _mm_aeskeygenassist_si128(k, (rcon)));     \
  _mm_store_si128(enc + (index), k)
  KG_AES_EXPAND(1, 0x01);
  KG_AES_EXPAND(2, 0x02);
  KG_AES_EXPAND(3, 0x04);
  KG_AES_EXPAND(4, 0x08);
  KG_AES_EXPAND(5, 0x10);
  KG_AES_EXPAND(6, 0x20);
  KG_AES_EXPAND(7, 0x40);
  KG_AES_EXPAND(8, 0x80);
  KG_AES_EXPAND(9, 0x1b);
  KG_AES_EXPAND(10, 0x36);
#undef KG_AES_EXPAND

  // Equivalent-inverse-cipher schedule (FIPS 197 Section 5.3.5): the
  // encryption keys reversed, inner rounds through InvMixColumns (AESIMC),
  // exactly as the table kernel derives its dec_round_keys_.
  auto* dec = reinterpret_cast<__m128i*>(dec_keys_.data());
  _mm_store_si128(dec, _mm_load_si128(enc + kRounds));
  for (int round = 1; round < kRounds; ++round) {
    _mm_store_si128(dec + round,
                    _mm_aesimc_si128(_mm_load_si128(enc + kRounds - round)));
  }
  _mm_store_si128(dec + kRounds, _mm_load_si128(enc));
}

void Aes128Ni::encrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  const auto* rk = reinterpret_cast<const __m128i*>(enc_keys_.data());
  __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
  s = _mm_xor_si128(s, _mm_load_si128(rk));
  for (int round = 1; round < kRounds; ++round) {
    s = _mm_aesenc_si128(s, _mm_load_si128(rk + round));
  }
  s = _mm_aesenclast_si128(s, _mm_load_si128(rk + kRounds));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), s);
}

void Aes128Ni::decrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  const auto* rk = reinterpret_cast<const __m128i*>(dec_keys_.data());
  __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
  s = _mm_xor_si128(s, _mm_load_si128(rk));
  for (int round = 1; round < kRounds; ++round) {
    s = _mm_aesdec_si128(s, _mm_load_si128(rk + round));
  }
  s = _mm_aesdeclast_si128(s, _mm_load_si128(rk + kRounds));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), s);
}

void aesni_cbc_encrypt_streams(const AesNiCbcStream* streams, std::size_t n) {
  if (n == 0) return;
  if (n > kAesNiMaxStreams) {
    throw CryptoError("aesni_cbc_encrypt_streams: too many streams");
  }
  constexpr std::size_t kBlock = Aes128Ni::kBlockSize;
  __m128i chain[kAesNiMaxStreams];
  const __m128i* schedule[kAesNiMaxStreams];
  std::size_t whole[kAesNiMaxStreams];
  std::size_t total[kAesNiMaxStreams];
  std::size_t max_total = 0;
  for (std::size_t s = 0; s < n; ++s) {
    const AesNiCbcStream& stream = streams[s];
    whole[s] = stream.plaintext_size / kBlock;
    total[s] = whole[s] + 1;  // streamed PKCS#7 always adds a final block
    max_total = total[s] > max_total ? total[s] : max_total;
    std::memcpy(stream.out, stream.iv, kBlock);
    chain[s] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(stream.iv));
    schedule[s] =
        reinterpret_cast<const __m128i*>(stream.cipher->enc_round_keys());
  }
  // Lockstep over block positions: streams past their end drop out, the
  // rest keep interleaving. Per step, each live stream contributes its
  // next chained input block; one fused round ladder advances them all.
  for (std::size_t b = 0; b < max_total; ++b) {
    __m128i x[kAesNiMaxStreams];
    const __m128i* rk[kAesNiMaxStreams];
    std::size_t idx[kAesNiMaxStreams];
    int live = 0;
    for (std::size_t s = 0; s < n; ++s) {
      if (b >= total[s]) continue;
      __m128i input;
      if (b < whole[s]) {
        input = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
            streams[s].plaintext + b * kBlock));
      } else {
        // Final block: plaintext tail + streamed PKCS#7 pad bytes, exactly
        // like CbcCipher::encrypt_into (a full pad block on exact
        // multiples). Composed in a stack temp, never in the output.
        alignas(16) std::uint8_t padded[kBlock];
        const std::size_t tail = streams[s].plaintext_size - whole[s] * kBlock;
        std::memcpy(padded, streams[s].plaintext + whole[s] * kBlock, tail);
        std::memset(padded + tail, static_cast<int>(kBlock - tail),
                    kBlock - tail);
        input = _mm_load_si128(reinterpret_cast<const __m128i*>(padded));
      }
      x[live] = _mm_xor_si128(input, chain[s]);
      rk[live] = schedule[s];
      idx[live] = s;
      ++live;
    }
    switch (live) {
      case 1: encrypt_rounds<1>(x, rk); break;
      case 2: encrypt_rounds<2>(x, rk); break;
      case 3: encrypt_rounds<3>(x, rk); break;
      case 4: encrypt_rounds<4>(x, rk); break;
      case 5: encrypt_rounds<5>(x, rk); break;
      case 6: encrypt_rounds<6>(x, rk); break;
      case 7: encrypt_rounds<7>(x, rk); break;
      case 8: encrypt_rounds<8>(x, rk); break;
      default: break;
    }
    for (int j = 0; j < live; ++j) {
      const std::size_t s = idx[j];
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(streams[s].out + (b + 1) * kBlock), x[j]);
      chain[s] = x[j];
    }
  }
}

#else  // !KG_AESNI_BUILD — declaration-only stubs so the dispatch layer
       // links on every target; supported() is false, so none of these can
       // be reached through make_cipher.

Aes128Ni::Aes128Ni(BytesView key) {
  (void)key;
  throw CryptoError("AES-128-ni: kernel not compiled into this binary");
}

void Aes128Ni::encrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  (void)in;
  (void)out;
  throw CryptoError("AES-128-ni: kernel not compiled into this binary");
}

void Aes128Ni::decrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  (void)in;
  (void)out;
  throw CryptoError("AES-128-ni: kernel not compiled into this binary");
}

void aesni_cbc_encrypt_streams(const AesNiCbcStream* streams, std::size_t n) {
  (void)streams;
  (void)n;
  throw CryptoError("AES-128-ni: kernel not compiled into this binary");
}

#endif  // KG_AESNI_BUILD

}  // namespace keygraphs::crypto

// RSA signatures (PKCS#1 v1.5), replacing CryptoLib's RSA used by the paper.
//
// The paper signs rekey messages with RSA-512; we support 512..2048-bit
// moduli so the benchmarks can show how the signature cost (the dominant
// server cost in the paper's Table 4 / Figure 11) scales with key size.
// Signing uses the CRT representation for a ~4x speedup, as any production
// implementation would.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "crypto/bigint.h"
#include "crypto/digest.h"

namespace keygraphs::crypto {

class SecureRandom;

/// Verification half of an RSA key pair. Cheap to copy and to serialize —
/// clients receive it out of band (in the paper, at authentication time).
class RsaPublicKey {
 public:
  RsaPublicKey() = default;
  RsaPublicKey(BigInt modulus, BigInt public_exponent);

  /// Verifies a PKCS#1 v1.5 signature over `digest` (already hashed with
  /// `algorithm`). Returns false on any mismatch; never throws on bad input.
  [[nodiscard]] bool verify_digest(DigestAlgorithm algorithm,
                                   BytesView digest,
                                   BytesView signature) const;

  /// Convenience: hash `message` with `algorithm` then verify.
  [[nodiscard]] bool verify(DigestAlgorithm algorithm, BytesView message,
                            BytesView signature) const;

  /// Modulus size in bytes == signature size.
  [[nodiscard]] std::size_t signature_size() const;

  [[nodiscard]] const BigInt& modulus() const noexcept { return n_; }
  [[nodiscard]] const BigInt& exponent() const noexcept { return e_; }

  /// Wire codec (modulus and exponent, both length-prefixed big-endian).
  [[nodiscard]] Bytes serialize() const;
  static RsaPublicKey deserialize(BytesView data);

 private:
  BigInt n_;
  BigInt e_;
};

/// Signing half. Holds the CRT parameters (p, q, dP, dQ, qInv) and one
/// Montgomery context per prime, reused across signatures.
class RsaPrivateKey {
 public:
  /// Generates a fresh key pair. `modulus_bits` must be even and >= 512.
  /// The paper used 512-bit moduli; 65537 is the default public exponent.
  static RsaPrivateKey generate(SecureRandom& rng, std::size_t modulus_bits,
                                std::uint64_t public_exponent = 65537);

  /// PKCS#1 v1.5 signature over a precomputed digest.
  [[nodiscard]] Bytes sign_digest(DigestAlgorithm algorithm,
                                  BytesView digest) const;

  /// Hash `message` with `algorithm`, then sign.
  [[nodiscard]] Bytes sign(DigestAlgorithm algorithm, BytesView message) const;

  [[nodiscard]] const RsaPublicKey& public_key() const noexcept {
    return public_;
  }

  [[nodiscard]] std::size_t signature_size() const {
    return public_.signature_size();
  }

 private:
  RsaPrivateKey() = default;

  RsaPublicKey public_;
  BigInt p_, q_;
  BigInt d_p_, d_q_;  // d mod (p-1), d mod (q-1)
  BigInt q_inv_;      // q^-1 mod p
  std::shared_ptr<const Montgomery> mont_p_;
  std::shared_ptr<const Montgomery> mont_q_;
};

/// Builds the EMSA-PKCS1-v1_5 encoded block (0x00 0x01 FF.. 0x00 DigestInfo)
/// for `digest`. Exposed for tests. Throws CryptoError if the modulus is too
/// small for the digest.
Bytes pkcs1_v15_encode(DigestAlgorithm algorithm, BytesView digest,
                       std::size_t modulus_size);

}  // namespace keygraphs::crypto

#include "crypto/des.h"

#include <bit>

#include "crypto/des_tables.h"

namespace keygraphs::crypto {

namespace {

/// IP/FP as eight byte-indexed lookups XORed together (see des_tables.h).
std::uint64_t permute_by_bytes(
    std::uint64_t in,
    const std::array<std::array<std::uint64_t, 256>, 8>& table) {
  std::uint64_t out = 0;
  for (int b = 0; b < 8; ++b) {
    out ^= table[static_cast<std::size_t>(b)][(in >> (8 * (7 - b))) & 0xff];
  }
  return out;
}

/// The f-function on fused tables. The expansion E maps R's 6-bit groups to
/// consecutive windows of rotr(R, 1) (group i = bits 4i+1..4i+6 of it, MSB
/// first), so each S-box input is one shift + XOR with its subkey chunk, and
/// sp[] folds the S-box and P together.
std::uint32_t feistel(const DesTables& t, std::uint32_t half,
                      std::uint64_t subkey) {
  const std::uint32_t rr = std::rotr(half, 1);
  std::uint32_t out = 0;
  for (int box = 0; box < 8; ++box) {
    const std::uint32_t six =
        ((std::rotl(rr, 4 * box) >> 26) ^
         static_cast<std::uint32_t>(subkey >> (42 - 6 * box))) &
        0x3f;
    out ^= t.sp[static_cast<std::size_t>(box)][six];
  }
  return out;
}

}  // namespace

Des::Des(BytesView key) : round_keys_(des_key_schedule(key)) {}

void Des::crypt_block(const std::uint8_t* in, std::uint8_t* out,
                      bool decrypt) const {
  const DesTables& t = des_tables();
  const std::uint64_t block = permute_by_bytes(load_be64(in), t.ip);
  auto left = static_cast<std::uint32_t>(block >> 32);
  auto right = static_cast<std::uint32_t>(block);
  for (int round = 0; round < 16; ++round) {
    const std::size_t k =
        static_cast<std::size_t>(decrypt ? 15 - round : round);
    const std::uint32_t next = left ^ feistel(t, right, round_keys_[k]);
    left = right;
    right = next;
  }
  // Final swap: pre-output is R16 || L16.
  const std::uint64_t preout =
      (static_cast<std::uint64_t>(right) << 32) | left;
  store_be64(permute_by_bytes(preout, t.fp), out);
}

void Des::encrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  crypt_block(in, out, /*decrypt=*/false);
}

void Des::decrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  crypt_block(in, out, /*decrypt=*/true);
}

}  // namespace keygraphs::crypto

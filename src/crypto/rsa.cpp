#include "crypto/rsa.h"

#include "common/error.h"
#include "common/io.h"
#include "crypto/random.h"

namespace keygraphs::crypto {

namespace {

// ASN.1 DigestInfo prefixes for EMSA-PKCS1-v1_5 (RFC 8017 section 9.2).
BytesView digest_info_prefix(DigestAlgorithm algorithm) {
  static const Bytes kMd5 =
      from_hex("3020300c06082a864886f70d020505000410");
  static const Bytes kSha1 = from_hex("3021300906052b0e03021a05000414");
  static const Bytes kSha256 =
      from_hex("3031300d060960864801650304020105000420");
  switch (algorithm) {
    case DigestAlgorithm::kMd5:
      return kMd5;
    case DigestAlgorithm::kSha1:
      return kSha1;
    case DigestAlgorithm::kSha256:
      return kSha256;
    default:
      throw CryptoError("RSA: unsupported digest algorithm");
  }
}

}  // namespace

Bytes pkcs1_v15_encode(DigestAlgorithm algorithm, BytesView digest,
                       std::size_t modulus_size) {
  if (digest.size() != digest_size(algorithm)) {
    throw CryptoError("RSA: digest length does not match algorithm");
  }
  const BytesView prefix = digest_info_prefix(algorithm);
  const std::size_t payload = prefix.size() + digest.size();
  if (modulus_size < payload + 11) {
    throw CryptoError("RSA: modulus too small for digest");
  }
  Bytes out;
  out.reserve(modulus_size);
  out.push_back(0x00);
  out.push_back(0x01);
  out.insert(out.end(), modulus_size - payload - 3, 0xff);
  out.push_back(0x00);
  out.insert(out.end(), prefix.begin(), prefix.end());
  out.insert(out.end(), digest.begin(), digest.end());
  return out;
}

RsaPublicKey::RsaPublicKey(BigInt modulus, BigInt public_exponent)
    : n_(std::move(modulus)), e_(std::move(public_exponent)) {
  if (n_ < BigInt{4} || e_ < BigInt{3}) {
    throw CryptoError("RSA: invalid public key parameters");
  }
}

std::size_t RsaPublicKey::signature_size() const {
  return (n_.bit_length() + 7) / 8;
}

bool RsaPublicKey::verify_digest(DigestAlgorithm algorithm, BytesView digest,
                                 BytesView signature) const {
  if (n_.is_zero()) return false;
  if (signature.size() != signature_size()) return false;
  const BigInt s = BigInt::from_bytes_be(signature);
  if (s >= n_) return false;
  const BigInt m = BigInt::mod_exp(s, e_, n_);
  Bytes expected;
  try {
    expected = pkcs1_v15_encode(algorithm, digest, signature_size());
  } catch (const CryptoError&) {
    return false;
  }
  return constant_time_equal(m.to_bytes_be(signature_size()), expected);
}

bool RsaPublicKey::verify(DigestAlgorithm algorithm, BytesView message,
                          BytesView signature) const {
  return verify_digest(algorithm, digest_of(algorithm, message), signature);
}

Bytes RsaPublicKey::serialize() const {
  ByteWriter writer;
  writer.var_bytes(n_.to_bytes_be());
  writer.var_bytes(e_.to_bytes_be());
  return writer.take();
}

RsaPublicKey RsaPublicKey::deserialize(BytesView data) {
  ByteReader reader(data);
  BigInt n = BigInt::from_bytes_be(reader.var_bytes());
  BigInt e = BigInt::from_bytes_be(reader.var_bytes());
  reader.expect_done();
  return RsaPublicKey(std::move(n), std::move(e));
}

RsaPrivateKey RsaPrivateKey::generate(SecureRandom& rng,
                                      std::size_t modulus_bits,
                                      std::uint64_t public_exponent) {
  if (modulus_bits < 512 || modulus_bits % 2 != 0) {
    throw CryptoError("RSA: modulus must be even and >= 512 bits");
  }
  const BigInt e{public_exponent};

  RsaPrivateKey key;
  for (;;) {
    BigInt p = BigInt::generate_prime(rng, modulus_bits / 2);
    BigInt q = BigInt::generate_prime(rng, modulus_bits / 2);
    if (p == q) continue;
    if (p < q) std::swap(p, q);  // CRT convention: p > q

    const BigInt p1 = p - BigInt{1};
    const BigInt q1 = q - BigInt{1};
    // e must be coprime to (p-1)(q-1).
    if (BigInt::gcd(p1, e) != BigInt{1} || BigInt::gcd(q1, e) != BigInt{1}) {
      continue;
    }
    const BigInt n = p * q;
    if (n.bit_length() != modulus_bits) continue;

    const BigInt phi = p1 * q1;
    const BigInt d = BigInt::mod_inverse(e, phi);

    key.public_ = RsaPublicKey(n, e);
    key.d_p_ = d % p1;
    key.d_q_ = d % q1;
    key.q_inv_ = BigInt::mod_inverse(q, p);
    key.mont_p_ = std::make_shared<Montgomery>(p);
    key.mont_q_ = std::make_shared<Montgomery>(q);
    key.p_ = std::move(p);
    key.q_ = std::move(q);
    return key;
  }
}

Bytes RsaPrivateKey::sign_digest(DigestAlgorithm algorithm,
                                 BytesView digest) const {
  const std::size_t size = signature_size();
  const BigInt m =
      BigInt::from_bytes_be(pkcs1_v15_encode(algorithm, digest, size));

  // CRT: s = m^d mod n assembled from the two half-size exponentiations.
  const BigInt s_p = mont_p_->mod_exp(m % p_, d_p_);
  const BigInt s_q = mont_q_->mod_exp(m % q_, d_q_);
  const BigInt diff = s_p >= s_q ? s_p - s_q : p_ - ((s_q - s_p) % p_);
  const BigInt h = (q_inv_ * diff) % p_;
  const BigInt s = s_q + h * q_;
  return s.to_bytes_be(size);
}

Bytes RsaPrivateKey::sign(DigestAlgorithm algorithm, BytesView message) const {
  return sign_digest(algorithm, digest_of(algorithm, message));
}

}  // namespace keygraphs::crypto

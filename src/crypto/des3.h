// Triple-DES (EDE, three-key, as in ANSI X9.52): the era-appropriate
// hardening of the paper's DES, provided for the cipher ablation — it
// triples the per-key-wrap cost, which matters for the encryption-only
// configurations of Figures 10 and 11.
#pragma once

#include "crypto/des.h"

namespace keygraphs::crypto {

/// EDE3: C = E_{k1}(D_{k2}(E_{k3}(P))). 24-byte keys, 8-byte blocks.
class Des3 final : public BlockCipher {
 public:
  static constexpr std::size_t kBlockSize = 8;
  static constexpr std::size_t kKeySize = 24;

  /// Throws CryptoError if key size != 24.
  explicit Des3(BytesView key);

  [[nodiscard]] std::size_t block_size() const noexcept override {
    return kBlockSize;
  }
  [[nodiscard]] std::size_t key_size() const noexcept override {
    return kKeySize;
  }
  [[nodiscard]] std::string name() const override { return "3DES"; }

  void encrypt_block(const std::uint8_t* in, std::uint8_t* out) const override;
  void decrypt_block(const std::uint8_t* in, std::uint8_t* out) const override;

 private:
  Des first_;
  Des second_;
  Des third_;
};

}  // namespace keygraphs::crypto

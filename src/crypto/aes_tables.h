// Round-function lookup tables for AES-128, derived at startup.
//
// The repo's rule for crypto constants is derive-not-paste: the S-box is
// computed from its FIPS 197 definition (multiplicative inverse in GF(2^8)
// followed by the affine transform), and the 32-bit T-tables of the
// rijndael-alg-fst formulation are in turn computed from the S-box:
//
//   Te0[x] = (2*S[x], S[x], S[x], 3*S[x])       packed MSB-first
//   Td0[x] = (14*IS[x], 9*IS[x], 13*IS[x], 11*IS[x])
//   Te_i[x] = Te0[x] >>> 8i,  Td_i[x] = Td0[x] >>> 8i   (i = 1..3)
//
// One Te lookup fuses SubBytes with a MixColumns column, so an AES round
// over the four column words is 16 table loads and a handful of XORs —
// no GF(2^8) arithmetic on the block path. The FIPS 197 / SP 800-38A
// vectors in the test suite pin the derivation, and
// tests/test_crypto_kernels.cpp cross-checks the table kernel against the
// retained reference round functions (crypto/reference.h).
#pragma once

#include <array>
#include <cstdint>

namespace keygraphs::crypto {

/// GF(2^8) multiply with the AES reduction polynomial x^8+x^4+x^3+x+1.
/// Used by the key schedule and the table derivation — never on the
/// per-block path.
std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b);

struct AesTables {
  std::array<std::uint8_t, 256> sbox{};
  std::array<std::uint8_t, 256> inv_sbox{};
  /// te[i][x] = Te_i[x], td[i][x] = Td_i[x] as above.
  std::array<std::array<std::uint32_t, 256>, 4> te{};
  std::array<std::array<std::uint32_t, 256>, 4> td{};
};

/// The shared tables, built on first use (thread-safe magic static).
const AesTables& aes_tables();

}  // namespace keygraphs::crypto

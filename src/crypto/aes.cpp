#include "crypto/aes.h"

#include "common/error.h"

namespace keygraphs::crypto {

namespace {

// GF(2^8) arithmetic with the AES reduction polynomial x^8+x^4+x^3+x+1.
std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t result = 0;
  while (b != 0) {
    if (b & 1) result ^= a;
    const bool carry = (a & 0x80) != 0;
    a = static_cast<std::uint8_t>(a << 1);
    if (carry) a ^= 0x1b;
    b >>= 1;
  }
  return result;
}

// The S-box is derived at startup from its definition (multiplicative
// inverse in GF(2^8) followed by an affine transform) rather than pasted as
// a 256-entry table; the FIPS-197 test vectors in the test suite pin it.
struct SboxTables {
  std::array<std::uint8_t, 256> fwd{};
  std::array<std::uint8_t, 256> inv{};

  SboxTables() {
    for (int x = 0; x < 256; ++x) {
      // Multiplicative inverse (0 maps to 0).
      std::uint8_t v = 0;
      if (x != 0) {
        for (int y = 1; y < 256; ++y) {
          if (gf_mul(static_cast<std::uint8_t>(x),
                     static_cast<std::uint8_t>(y)) == 1) {
            v = static_cast<std::uint8_t>(y);
            break;
          }
        }
      }
      auto rotl8 = [](std::uint8_t b, int n) {
        return static_cast<std::uint8_t>((b << n) | (b >> (8 - n)));
      };
      const std::uint8_t s = static_cast<std::uint8_t>(
          v ^ rotl8(v, 1) ^ rotl8(v, 2) ^ rotl8(v, 3) ^ rotl8(v, 4) ^ 0x63);
      fwd[static_cast<std::size_t>(x)] = s;
      inv[s] = static_cast<std::uint8_t>(x);
    }
  }
};

const SboxTables& sbox() {
  static const SboxTables tables;
  return tables;
}

std::uint32_t load_be32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 |
         static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 |
         static_cast<std::uint32_t>(p[3]);
}

std::uint32_t sub_word(std::uint32_t w) {
  const auto& s = sbox().fwd;
  return static_cast<std::uint32_t>(s[(w >> 24) & 0xff]) << 24 |
         static_cast<std::uint32_t>(s[(w >> 16) & 0xff]) << 16 |
         static_cast<std::uint32_t>(s[(w >> 8) & 0xff]) << 8 |
         static_cast<std::uint32_t>(s[w & 0xff]);
}

std::uint32_t rot_word(std::uint32_t w) { return (w << 8) | (w >> 24); }

using State = std::array<std::uint8_t, 16>;  // column-major, as in FIPS 197

void add_round_key(State& st, const std::uint32_t* rk) {
  for (int c = 0; c < 4; ++c) {
    const std::uint32_t w = rk[c];
    st[static_cast<std::size_t>(4 * c + 0)] ^=
        static_cast<std::uint8_t>(w >> 24);
    st[static_cast<std::size_t>(4 * c + 1)] ^=
        static_cast<std::uint8_t>(w >> 16);
    st[static_cast<std::size_t>(4 * c + 2)] ^= static_cast<std::uint8_t>(w >> 8);
    st[static_cast<std::size_t>(4 * c + 3)] ^= static_cast<std::uint8_t>(w);
  }
}

void sub_bytes(State& st, bool inverse) {
  const auto& table = inverse ? sbox().inv : sbox().fwd;
  for (auto& b : st) b = table[b];
}

void shift_rows(State& st, bool inverse) {
  State out;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      const int src_col = inverse ? (c - r + 4) % 4 : (c + r) % 4;
      out[static_cast<std::size_t>(4 * c + r)] =
          st[static_cast<std::size_t>(4 * src_col + r)];
    }
  }
  st = out;
}

void mix_columns(State& st, bool inverse) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = &st[static_cast<std::size_t>(4 * c)];
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    if (!inverse) {
      col[0] = gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3;
      col[1] = a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3;
      col[2] = a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3);
      col[3] = gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2);
    } else {
      col[0] = gf_mul(a0, 14) ^ gf_mul(a1, 11) ^ gf_mul(a2, 13) ^ gf_mul(a3, 9);
      col[1] = gf_mul(a0, 9) ^ gf_mul(a1, 14) ^ gf_mul(a2, 11) ^ gf_mul(a3, 13);
      col[2] = gf_mul(a0, 13) ^ gf_mul(a1, 9) ^ gf_mul(a2, 14) ^ gf_mul(a3, 11);
      col[3] = gf_mul(a0, 11) ^ gf_mul(a1, 13) ^ gf_mul(a2, 9) ^ gf_mul(a3, 14);
    }
  }
}

}  // namespace

Aes128::Aes128(BytesView key) {
  if (key.size() != kKeySize) {
    throw CryptoError("AES-128: key must be 16 bytes");
  }
  for (int i = 0; i < 4; ++i) {
    round_keys_[static_cast<std::size_t>(i)] = load_be32(key.data() + 4 * i);
  }
  std::uint8_t rcon = 0x01;
  for (std::size_t i = 4; i < round_keys_.size(); ++i) {
    std::uint32_t temp = round_keys_[i - 1];
    if (i % 4 == 0) {
      temp = sub_word(rot_word(temp)) ^
             (static_cast<std::uint32_t>(rcon) << 24);
      rcon = gf_mul(rcon, 2);
    }
    round_keys_[i] = round_keys_[i - 4] ^ temp;
  }
}

void Aes128::encrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  State st;
  for (int i = 0; i < 16; ++i) st[static_cast<std::size_t>(i)] = in[i];
  add_round_key(st, &round_keys_[0]);
  for (int round = 1; round < kRounds; ++round) {
    sub_bytes(st, false);
    shift_rows(st, false);
    mix_columns(st, false);
    add_round_key(st, &round_keys_[static_cast<std::size_t>(4 * round)]);
  }
  sub_bytes(st, false);
  shift_rows(st, false);
  add_round_key(st, &round_keys_[4 * kRounds]);
  for (int i = 0; i < 16; ++i) out[i] = st[static_cast<std::size_t>(i)];
}

void Aes128::decrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  State st;
  for (int i = 0; i < 16; ++i) st[static_cast<std::size_t>(i)] = in[i];
  add_round_key(st, &round_keys_[4 * kRounds]);
  for (int round = kRounds - 1; round >= 1; --round) {
    shift_rows(st, true);
    sub_bytes(st, true);
    add_round_key(st, &round_keys_[static_cast<std::size_t>(4 * round)]);
    mix_columns(st, true);
  }
  shift_rows(st, true);
  sub_bytes(st, true);
  add_round_key(st, &round_keys_[0]);
  for (int i = 0; i < 16; ++i) out[i] = st[static_cast<std::size_t>(i)];
}

}  // namespace keygraphs::crypto

#include "crypto/aes.h"

#include "common/error.h"
#include "crypto/aes_tables.h"

namespace keygraphs::crypto {

namespace {

std::uint32_t load_be32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 |
         static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 |
         static_cast<std::uint32_t>(p[3]);
}

void store_be32(std::uint32_t w, std::uint8_t* p) {
  p[0] = static_cast<std::uint8_t>(w >> 24);
  p[1] = static_cast<std::uint8_t>(w >> 16);
  p[2] = static_cast<std::uint8_t>(w >> 8);
  p[3] = static_cast<std::uint8_t>(w);
}

std::uint32_t sub_word(std::uint32_t w) {
  const auto& s = aes_tables().sbox;
  return static_cast<std::uint32_t>(s[(w >> 24) & 0xff]) << 24 |
         static_cast<std::uint32_t>(s[(w >> 16) & 0xff]) << 16 |
         static_cast<std::uint32_t>(s[(w >> 8) & 0xff]) << 8 |
         static_cast<std::uint32_t>(s[w & 0xff]);
}

std::uint32_t rot_word(std::uint32_t w) { return (w << 8) | (w >> 24); }

/// InvMixColumns of a round-key word: Td applied on top of the forward
/// S-box cancels the substitution and leaves the column transform.
std::uint32_t inv_mix_word(const AesTables& t, std::uint32_t w) {
  return t.td[0][t.sbox[(w >> 24) & 0xff]] ^
         t.td[1][t.sbox[(w >> 16) & 0xff]] ^
         t.td[2][t.sbox[(w >> 8) & 0xff]] ^ t.td[3][t.sbox[w & 0xff]];
}

}  // namespace

Aes128::Aes128(BytesView key) {
  if (key.size() != kKeySize) {
    throw CryptoError("AES-128: key must be 16 bytes");
  }
  for (int i = 0; i < 4; ++i) {
    round_keys_[static_cast<std::size_t>(i)] = load_be32(key.data() + 4 * i);
  }
  std::uint8_t rcon = 0x01;
  for (std::size_t i = 4; i < round_keys_.size(); ++i) {
    std::uint32_t temp = round_keys_[i - 1];
    if (i % 4 == 0) {
      temp = sub_word(rot_word(temp)) ^
             (static_cast<std::uint32_t>(rcon) << 24);
      rcon = gf_mul(rcon, 2);
    }
    round_keys_[i] = round_keys_[i - 4] ^ temp;
  }

  const AesTables& t = aes_tables();
  for (int c = 0; c < 4; ++c) {
    dec_round_keys_[static_cast<std::size_t>(c)] =
        round_keys_[static_cast<std::size_t>(4 * kRounds + c)];
    dec_round_keys_[static_cast<std::size_t>(4 * kRounds + c)] =
        round_keys_[static_cast<std::size_t>(c)];
  }
  for (int round = 1; round < kRounds; ++round) {
    for (int c = 0; c < 4; ++c) {
      dec_round_keys_[static_cast<std::size_t>(4 * round + c)] = inv_mix_word(
          t, round_keys_[static_cast<std::size_t>(4 * (kRounds - round) + c)]);
    }
  }
}

void Aes128::encrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  const AesTables& t = aes_tables();
  const std::uint32_t* rk = round_keys_.data();
  std::uint32_t s0 = load_be32(in) ^ rk[0];
  std::uint32_t s1 = load_be32(in + 4) ^ rk[1];
  std::uint32_t s2 = load_be32(in + 8) ^ rk[2];
  std::uint32_t s3 = load_be32(in + 12) ^ rk[3];
  for (int round = 1; round < kRounds; ++round) {
    rk += 4;
    const std::uint32_t t0 = t.te[0][s0 >> 24] ^ t.te[1][(s1 >> 16) & 0xff] ^
                             t.te[2][(s2 >> 8) & 0xff] ^ t.te[3][s3 & 0xff] ^
                             rk[0];
    const std::uint32_t t1 = t.te[0][s1 >> 24] ^ t.te[1][(s2 >> 16) & 0xff] ^
                             t.te[2][(s3 >> 8) & 0xff] ^ t.te[3][s0 & 0xff] ^
                             rk[1];
    const std::uint32_t t2 = t.te[0][s2 >> 24] ^ t.te[1][(s3 >> 16) & 0xff] ^
                             t.te[2][(s0 >> 8) & 0xff] ^ t.te[3][s1 & 0xff] ^
                             rk[2];
    const std::uint32_t t3 = t.te[0][s3 >> 24] ^ t.te[1][(s0 >> 16) & 0xff] ^
                             t.te[2][(s1 >> 8) & 0xff] ^ t.te[3][s2 & 0xff] ^
                             rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }
  // Final round: SubBytes + ShiftRows only (raw S-box bytes, no MixColumns).
  rk += 4;
  const auto& sb = t.sbox;
  const std::uint32_t o0 =
      (static_cast<std::uint32_t>(sb[s0 >> 24]) << 24 |
       static_cast<std::uint32_t>(sb[(s1 >> 16) & 0xff]) << 16 |
       static_cast<std::uint32_t>(sb[(s2 >> 8) & 0xff]) << 8 |
       static_cast<std::uint32_t>(sb[s3 & 0xff])) ^
      rk[0];
  const std::uint32_t o1 =
      (static_cast<std::uint32_t>(sb[s1 >> 24]) << 24 |
       static_cast<std::uint32_t>(sb[(s2 >> 16) & 0xff]) << 16 |
       static_cast<std::uint32_t>(sb[(s3 >> 8) & 0xff]) << 8 |
       static_cast<std::uint32_t>(sb[s0 & 0xff])) ^
      rk[1];
  const std::uint32_t o2 =
      (static_cast<std::uint32_t>(sb[s2 >> 24]) << 24 |
       static_cast<std::uint32_t>(sb[(s3 >> 16) & 0xff]) << 16 |
       static_cast<std::uint32_t>(sb[(s0 >> 8) & 0xff]) << 8 |
       static_cast<std::uint32_t>(sb[s1 & 0xff])) ^
      rk[2];
  const std::uint32_t o3 =
      (static_cast<std::uint32_t>(sb[s3 >> 24]) << 24 |
       static_cast<std::uint32_t>(sb[(s0 >> 16) & 0xff]) << 16 |
       static_cast<std::uint32_t>(sb[(s1 >> 8) & 0xff]) << 8 |
       static_cast<std::uint32_t>(sb[s2 & 0xff])) ^
      rk[3];
  store_be32(o0, out);
  store_be32(o1, out + 4);
  store_be32(o2, out + 8);
  store_be32(o3, out + 12);
}

void Aes128::decrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  const AesTables& t = aes_tables();
  const std::uint32_t* rk = dec_round_keys_.data();
  std::uint32_t s0 = load_be32(in) ^ rk[0];
  std::uint32_t s1 = load_be32(in + 4) ^ rk[1];
  std::uint32_t s2 = load_be32(in + 8) ^ rk[2];
  std::uint32_t s3 = load_be32(in + 12) ^ rk[3];
  for (int round = 1; round < kRounds; ++round) {
    rk += 4;
    // InvShiftRows walks the columns backwards.
    const std::uint32_t t0 = t.td[0][s0 >> 24] ^ t.td[1][(s3 >> 16) & 0xff] ^
                             t.td[2][(s2 >> 8) & 0xff] ^ t.td[3][s1 & 0xff] ^
                             rk[0];
    const std::uint32_t t1 = t.td[0][s1 >> 24] ^ t.td[1][(s0 >> 16) & 0xff] ^
                             t.td[2][(s3 >> 8) & 0xff] ^ t.td[3][s2 & 0xff] ^
                             rk[1];
    const std::uint32_t t2 = t.td[0][s2 >> 24] ^ t.td[1][(s1 >> 16) & 0xff] ^
                             t.td[2][(s0 >> 8) & 0xff] ^ t.td[3][s3 & 0xff] ^
                             rk[2];
    const std::uint32_t t3 = t.td[0][s3 >> 24] ^ t.td[1][(s2 >> 16) & 0xff] ^
                             t.td[2][(s1 >> 8) & 0xff] ^ t.td[3][s0 & 0xff] ^
                             rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }
  rk += 4;
  const auto& sb = t.inv_sbox;
  const std::uint32_t o0 =
      (static_cast<std::uint32_t>(sb[s0 >> 24]) << 24 |
       static_cast<std::uint32_t>(sb[(s3 >> 16) & 0xff]) << 16 |
       static_cast<std::uint32_t>(sb[(s2 >> 8) & 0xff]) << 8 |
       static_cast<std::uint32_t>(sb[s1 & 0xff])) ^
      rk[0];
  const std::uint32_t o1 =
      (static_cast<std::uint32_t>(sb[s1 >> 24]) << 24 |
       static_cast<std::uint32_t>(sb[(s0 >> 16) & 0xff]) << 16 |
       static_cast<std::uint32_t>(sb[(s3 >> 8) & 0xff]) << 8 |
       static_cast<std::uint32_t>(sb[s2 & 0xff])) ^
      rk[1];
  const std::uint32_t o2 =
      (static_cast<std::uint32_t>(sb[s2 >> 24]) << 24 |
       static_cast<std::uint32_t>(sb[(s1 >> 16) & 0xff]) << 16 |
       static_cast<std::uint32_t>(sb[(s0 >> 8) & 0xff]) << 8 |
       static_cast<std::uint32_t>(sb[s3 & 0xff])) ^
      rk[2];
  const std::uint32_t o3 =
      (static_cast<std::uint32_t>(sb[s3 >> 24]) << 24 |
       static_cast<std::uint32_t>(sb[(s2 >> 16) & 0xff]) << 16 |
       static_cast<std::uint32_t>(sb[(s1 >> 8) & 0xff]) << 8 |
       static_cast<std::uint32_t>(sb[s0 & 0xff])) ^
      rk[3];
  store_be32(o0, out);
  store_be32(o1, out + 4);
  store_be32(o2, out + 8);
  store_be32(o3, out + 12);
}

}  // namespace keygraphs::crypto

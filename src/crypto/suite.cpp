#include "crypto/suite.h"

#include "common/error.h"
#include "crypto/aes.h"
#include "crypto/aes_aesni.h"
#include "crypto/cpu_features.h"
#include "crypto/des.h"
#include "crypto/des3.h"
#include "crypto/md5.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace keygraphs::crypto {

std::unique_ptr<BlockCipher> make_cipher(CipherAlgorithm algorithm,
                                         BytesView key) {
  switch (algorithm) {
    case CipherAlgorithm::kDes:
      return std::make_unique<Des>(key);
    case CipherAlgorithm::kAes128:
      // Runtime dispatch: same algorithm, same bytes, different kernel.
      if (aesni_dispatch_enabled()) {
        return std::make_unique<Aes128Ni>(key);
      }
      return std::make_unique<Aes128>(key);
    case CipherAlgorithm::kDes3:
      return std::make_unique<Des3>(key);
  }
  throw CryptoError("make_cipher: unknown cipher algorithm");
}

std::size_t cipher_key_size(CipherAlgorithm algorithm) {
  switch (algorithm) {
    case CipherAlgorithm::kDes:
      return Des::kKeySize;
    case CipherAlgorithm::kAes128:
      return Aes128::kKeySize;
    case CipherAlgorithm::kDes3:
      return Des3::kKeySize;
  }
  throw CryptoError("cipher_key_size: unknown cipher algorithm");
}

std::size_t cipher_block_size(CipherAlgorithm algorithm) {
  switch (algorithm) {
    case CipherAlgorithm::kDes:
      return Des::kBlockSize;
    case CipherAlgorithm::kAes128:
      return Aes128::kBlockSize;
    case CipherAlgorithm::kDes3:
      return Des3::kBlockSize;
  }
  throw CryptoError("cipher_block_size: unknown cipher algorithm");
}

std::string cipher_name(CipherAlgorithm algorithm) {
  switch (algorithm) {
    case CipherAlgorithm::kDes:
      return "DES";
    case CipherAlgorithm::kAes128:
      return "AES-128";
    case CipherAlgorithm::kDes3:
      return "3DES";
  }
  return "?";
}

std::unique_ptr<Digest> make_digest(DigestAlgorithm algorithm) {
  switch (algorithm) {
    case DigestAlgorithm::kMd5:
      return std::make_unique<Md5>();
    case DigestAlgorithm::kSha1:
      return std::make_unique<Sha1>();
    case DigestAlgorithm::kSha256:
      return std::make_unique<Sha256>();
    case DigestAlgorithm::kNone:
      break;
  }
  throw CryptoError("make_digest: no such digest algorithm");
}

Bytes digest_of(DigestAlgorithm algorithm, BytesView data) {
  // finish() resets the context (see digest.h), so one thread-local instance
  // per algorithm serves every one-shot hash without a heap allocation —
  // this sits in the executor's per-leaf digest loop.
  switch (algorithm) {
    case DigestAlgorithm::kMd5: {
      thread_local Md5 md5;
      md5.update(data);
      return md5.finish();
    }
    case DigestAlgorithm::kSha1: {
      thread_local Sha1 sha1;
      sha1.update(data);
      return sha1.finish();
    }
    case DigestAlgorithm::kSha256: {
      thread_local Sha256 sha256;
      sha256.update(data);
      return sha256.finish();
    }
    case DigestAlgorithm::kNone:
      break;
  }
  throw CryptoError("digest_of: no such digest algorithm");
}

std::size_t digest_size(DigestAlgorithm algorithm) {
  switch (algorithm) {
    case DigestAlgorithm::kMd5:
      return 16;
    case DigestAlgorithm::kSha1:
      return 20;
    case DigestAlgorithm::kSha256:
      return 32;
    case DigestAlgorithm::kNone:
      return 0;
  }
  throw CryptoError("digest_size: unknown digest algorithm");
}

std::string digest_name(DigestAlgorithm algorithm) {
  switch (algorithm) {
    case DigestAlgorithm::kMd5:
      return "MD5";
    case DigestAlgorithm::kSha1:
      return "SHA-1";
    case DigestAlgorithm::kSha256:
      return "SHA-256";
    case DigestAlgorithm::kNone:
      return "none";
  }
  return "?";
}

std::size_t signature_modulus_bits(SignatureAlgorithm algorithm) {
  switch (algorithm) {
    case SignatureAlgorithm::kNone:
      return 0;
    case SignatureAlgorithm::kRsa512:
      return 512;
    case SignatureAlgorithm::kRsa768:
      return 768;
    case SignatureAlgorithm::kRsa1024:
      return 1024;
    case SignatureAlgorithm::kRsa2048:
      return 2048;
  }
  throw CryptoError("signature_modulus_bits: unknown algorithm");
}

std::string signature_name(SignatureAlgorithm algorithm) {
  switch (algorithm) {
    case SignatureAlgorithm::kNone:
      return "none";
    case SignatureAlgorithm::kRsa512:
      return "RSA-512";
    case SignatureAlgorithm::kRsa768:
      return "RSA-768";
    case SignatureAlgorithm::kRsa1024:
      return "RSA-1024";
    case SignatureAlgorithm::kRsa2048:
      return "RSA-2048";
  }
  return "?";
}

std::string CryptoSuite::label() const {
  return cipher_name(cipher) + "/" + digest_name(digest) + "/" +
         signature_name(signature);
}

}  // namespace keygraphs::crypto

// MD5 (RFC 1321) — the digest used by the paper's prototype.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/digest.h"

namespace keygraphs::crypto {

/// MD5 with the standard streaming interface. Broken for collision
/// resistance by modern standards; kept for fidelity to the paper and the
/// digest ablation benchmark.
class Md5 final : public Digest {
 public:
  Md5() { reset(); }

  [[nodiscard]] std::size_t digest_size() const noexcept override {
    return 16;
  }
  [[nodiscard]] std::size_t block_size() const noexcept override { return 64; }
  [[nodiscard]] std::string name() const override { return "MD5"; }

  void update(BytesView data) override;
  Bytes finish() override;
  [[nodiscard]] std::unique_ptr<Digest> clone() const override {
    return std::make_unique<Md5>();
  }

 private:
  void reset();
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace keygraphs::crypto

// Arbitrary-precision unsigned integers, sized for RSA.
//
// Replaces the CryptoLib bignum package the paper's prototype used. Provides
// exactly what RSA needs: schoolbook multiply, Knuth Algorithm D division,
// Montgomery modular exponentiation, extended-GCD modular inverse, and
// Miller–Rabin primality with safe-margin round counts.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"

namespace keygraphs::crypto {

class SecureRandom;

/// Unsigned big integer. Value semantics; normalized representation
/// (no leading zero limbs; zero is the empty limb vector).
class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// From a machine integer.
  BigInt(std::uint64_t value);  // NOLINT(google-explicit-constructor)

  /// Big-endian byte import (the natural wire format for RSA values).
  static BigInt from_bytes_be(BytesView bytes);

  /// Big-endian byte export, left-padded with zeros to at least `min_size`.
  [[nodiscard]] Bytes to_bytes_be(std::size_t min_size = 0) const;

  /// Hex import/export for tests and debugging.
  static BigInt from_hex(std::string_view hex);
  [[nodiscard]] std::string to_hex() const;

  [[nodiscard]] bool is_zero() const noexcept { return limbs_.empty(); }
  [[nodiscard]] bool is_odd() const noexcept {
    return !limbs_.empty() && (limbs_[0] & 1u);
  }

  /// Number of significant bits (0 for zero).
  [[nodiscard]] std::size_t bit_length() const noexcept;

  /// Bit i (0 = least significant).
  [[nodiscard]] bool bit(std::size_t i) const noexcept;

  /// Low 64 bits of the value.
  [[nodiscard]] std::uint64_t to_u64() const noexcept;

  friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b);
  friend bool operator==(const BigInt& a, const BigInt& b) = default;

  friend BigInt operator+(const BigInt& a, const BigInt& b);
  /// Throws Error if b > a (values are unsigned).
  friend BigInt operator-(const BigInt& a, const BigInt& b);
  friend BigInt operator*(const BigInt& a, const BigInt& b);
  friend BigInt operator/(const BigInt& a, const BigInt& b);
  friend BigInt operator%(const BigInt& a, const BigInt& b);
  friend BigInt operator<<(const BigInt& a, std::size_t bits);
  friend BigInt operator>>(const BigInt& a, std::size_t bits);

  /// Quotient and remainder in one pass. Throws Error on division by zero.
  static std::pair<BigInt, BigInt> divmod(const BigInt& a, const BigInt& b);

  /// (base ^ exponent) mod modulus. Montgomery ladder for odd moduli,
  /// classic square-and-multiply otherwise. Throws on zero modulus.
  static BigInt mod_exp(const BigInt& base, const BigInt& exponent,
                        const BigInt& modulus);

  /// Multiplicative inverse of a mod m. Throws CryptoError if gcd(a,m) != 1.
  static BigInt mod_inverse(const BigInt& a, const BigInt& m);

  static BigInt gcd(BigInt a, BigInt b);

  /// Uniform value with exactly `bits` bits (top bit set).
  static BigInt random_bits(SecureRandom& rng, std::size_t bits);

  /// Uniform value in [0, bound).
  static BigInt random_below(SecureRandom& rng, const BigInt& bound);

  /// Miller–Rabin with `rounds` random bases (plus a small-prime sieve).
  [[nodiscard]] bool is_probable_prime(SecureRandom& rng,
                                       int rounds = 40) const;

  /// Random prime with exactly `bits` bits; top two bits set so the product
  /// of two such primes has exactly 2*bits bits (an RSA modulus invariant).
  static BigInt generate_prime(SecureRandom& rng, std::size_t bits);

 private:
  void trim() noexcept;
  static BigInt shift_limbs(const BigInt& a, std::size_t limbs);

  std::vector<std::uint32_t> limbs_;  // little-endian

  friend class Montgomery;
};

/// Montgomery context for repeated multiplication mod a fixed odd modulus.
/// Exposed so RSA-CRT can reuse one context per prime across many signatures.
class Montgomery {
 public:
  /// Throws CryptoError unless modulus is odd and > 1.
  explicit Montgomery(const BigInt& modulus);

  /// (base ^ exponent) mod modulus.
  [[nodiscard]] BigInt mod_exp(const BigInt& base,
                               const BigInt& exponent) const;

  [[nodiscard]] const BigInt& modulus() const noexcept { return modulus_; }

 private:
  using Limbs = std::vector<std::uint32_t>;

  // out = a * b * R^-1 mod N (CIOS). All operands have exactly k limbs.
  void mont_mul(const Limbs& a, const Limbs& b, Limbs& out) const;

  [[nodiscard]] Limbs to_mont(const BigInt& value) const;
  [[nodiscard]] BigInt from_mont(const Limbs& value) const;

  BigInt modulus_;
  std::size_t k_;           // limb count of modulus
  std::uint32_t n0_inv_;    // -N^-1 mod 2^32
  BigInt r_mod_n_;          // R mod N
  BigInt r2_mod_n_;         // R^2 mod N
};

}  // namespace keygraphs::crypto

// AES-128 (FIPS 197). The modern counterpart to DES for the cipher ablation
// benchmark; also the default cipher for the example applications.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/block_cipher.h"

namespace keygraphs::crypto {

/// AES with a 128-bit key and the standard 10-round schedule.
/// Table-driven (the 32-bit Te/Td tables of crypto/aes_tables.h, which fuse
/// SubBytes and MixColumns into one lookup); constant time is not a goal
/// here — the threat model of the paper is network attackers, not local
/// cache-timing observers. The retained byte-at-a-time kernel lives in
/// crypto/reference.h and pins this one via the cross-check test.
class Aes128 final : public BlockCipher {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;
  static constexpr int kRounds = 10;

  /// Expands the key schedule. Throws CryptoError if key size != 16.
  explicit Aes128(BytesView key);

  [[nodiscard]] std::size_t block_size() const noexcept override {
    return kBlockSize;
  }
  [[nodiscard]] std::size_t key_size() const noexcept override {
    return kKeySize;
  }
  [[nodiscard]] std::string name() const override { return "AES-128"; }

  void encrypt_block(const std::uint8_t* in, std::uint8_t* out) const override;
  void decrypt_block(const std::uint8_t* in, std::uint8_t* out) const override;

 private:
  // Round keys as 4-byte words, 4 words per round plus the initial key.
  std::array<std::uint32_t, 4 * (kRounds + 1)> round_keys_{};
  // Equivalent-inverse-cipher keys: the encryption schedule reversed, with
  // InvMixColumns applied to the inner rounds, so decryption runs the same
  // word-oriented round shape as encryption (FIPS 197 Section 5.3.5).
  std::array<std::uint32_t, 4 * (kRounds + 1)> dec_round_keys_{};
};

}  // namespace keygraphs::crypto

#include "crypto/des_tables.h"

#include "common/error.h"

namespace keygraphs::crypto {

// All tables use the 1-based bit numbering of FIPS 46-3, where bit 1 is the
// most significant bit of the block.

const std::uint8_t kDesInitialPermutation[64] = {
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9,  1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7};

const std::uint8_t kDesFinalPermutation[64] = {
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9,  49, 17, 57, 25};

const std::uint8_t kDesExpansion[48] = {
    32, 1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,  8,  9,  10, 11,
    12, 13, 12, 13, 14, 15, 16, 17, 16, 17, 18, 19, 20, 21, 20, 21,
    22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1};

const std::uint8_t kDesPermutationP[32] = {
    16, 7, 20, 21, 29, 12, 28, 17, 1,  15, 23, 26, 5,  18, 31, 10,
    2,  8, 24, 14, 32, 27, 3,  9,  19, 13, 30, 6,  22, 11, 4,  25};

const std::uint8_t kDesPermutedChoice1[56] = {
    57, 49, 41, 33, 25, 17, 9,  1,  58, 50, 42, 34, 26, 18,
    10, 2,  59, 51, 43, 35, 27, 19, 11, 3,  60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15, 7,  62, 54, 46, 38, 30, 22,
    14, 6,  61, 53, 45, 37, 29, 21, 13, 5,  28, 20, 12, 4};

const std::uint8_t kDesPermutedChoice2[48] = {
    14, 17, 11, 24, 1,  5,  3,  28, 15, 6,  21, 10, 23, 19, 12, 4,
    26, 8,  16, 7,  27, 20, 13, 2,  41, 52, 31, 37, 47, 55, 30, 40,
    51, 45, 33, 48, 44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32};

const std::uint8_t kDesLeftShifts[16] = {1, 1, 2, 2, 2, 2, 2, 2,
                                         1, 2, 2, 2, 2, 2, 2, 1};

const std::uint8_t kDesSBox[8][64] = {
    {14, 4,  13, 1, 2,  15, 11, 8,  3,  10, 6,  12, 5,  9,  0, 7,
     0,  15, 7,  4, 14, 2,  13, 1,  10, 6,  12, 11, 9,  5,  3, 8,
     4,  1,  14, 8, 13, 6,  2,  11, 15, 12, 9,  7,  3,  10, 5, 0,
     15, 12, 8,  2, 4,  9,  1,  7,  5,  11, 3,  14, 10, 0,  6, 13},
    {15, 1,  8,  14, 6,  11, 3,  4,  9,  7, 2,  13, 12, 0, 5,  10,
     3,  13, 4,  7,  15, 2,  8,  14, 12, 0, 1,  10, 6,  9, 11, 5,
     0,  14, 7,  11, 10, 4,  13, 1,  5,  8, 12, 6,  9,  3, 2,  15,
     13, 8,  10, 1,  3,  15, 4,  2,  11, 6, 7,  12, 0,  5, 14, 9},
    {10, 0,  9,  14, 6, 3,  15, 5,  1,  13, 12, 7,  11, 4,  2,  8,
     13, 7,  0,  9,  3, 4,  6,  10, 2,  8,  5,  14, 12, 11, 15, 1,
     13, 6,  4,  9,  8, 15, 3,  0,  11, 1,  2,  12, 5,  10, 14, 7,
     1,  10, 13, 0,  6, 9,  8,  7,  4,  15, 14, 3,  11, 5,  2,  12},
    {7,  13, 14, 3, 0,  6,  9,  10, 1,  2, 8, 5,  11, 12, 4,  15,
     13, 8,  11, 5, 6,  15, 0,  3,  4,  7, 2, 12, 1,  10, 14, 9,
     10, 6,  9,  0, 12, 11, 7,  13, 15, 1, 3, 14, 5,  2,  8,  4,
     3,  15, 0,  6, 10, 1,  13, 8,  9,  4, 5, 11, 12, 7,  2,  14},
    {2,  12, 4,  1,  7,  10, 11, 6,  8,  5,  3,  15, 13, 0, 14, 9,
     14, 11, 2,  12, 4,  7,  13, 1,  5,  0,  15, 10, 3,  9, 8,  6,
     4,  2,  1,  11, 10, 13, 7,  8,  15, 9,  12, 5,  6,  3, 0,  14,
     11, 8,  12, 7,  1,  14, 2,  13, 6,  15, 0,  9,  10, 4, 5,  3},
    {12, 1,  10, 15, 9, 2,  6,  8,  0,  13, 3,  4,  14, 7,  5,  11,
     10, 15, 4,  2,  7, 12, 9,  5,  6,  1,  13, 14, 0,  11, 3,  8,
     9,  14, 15, 5,  2, 8,  12, 3,  7,  0,  4,  10, 1,  13, 11, 6,
     4,  3,  2,  12, 9, 5,  15, 10, 11, 14, 1,  7,  6,  0,  8,  13},
    {4,  11, 2,  14, 15, 0, 8,  13, 3,  12, 9, 7,  5,  10, 6, 1,
     13, 0,  11, 7,  4,  9, 1,  10, 14, 3,  5, 12, 2,  15, 8, 6,
     1,  4,  11, 13, 12, 3, 7,  14, 10, 15, 6, 8,  0,  5,  9, 2,
     6,  11, 13, 8,  1,  4, 10, 7,  9,  5,  0, 15, 14, 2,  3, 12},
    {13, 2,  8,  4, 6,  15, 11, 1,  10, 9,  3,  14, 5,  0,  12, 7,
     1,  15, 13, 8, 10, 3,  7,  4,  12, 5,  6,  11, 0,  14, 9,  2,
     7,  11, 4,  1, 9,  12, 14, 2,  0,  6,  10, 13, 15, 3,  5,  8,
     2,  1,  14, 7, 4,  10, 8,  13, 15, 12, 9,  0,  3,  5,  6,  11}};

std::uint64_t des_permute(std::uint64_t in, const std::uint8_t* table,
                          std::size_t length, int in_bits) {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < length; ++i) {
    out = (out << 1) | ((in >> (in_bits - table[i])) & 1u);
  }
  return out;
}

namespace {

std::uint32_t rotl28(std::uint32_t v, int n) {
  return ((v << n) | (v >> (28 - n))) & 0x0fffffffu;
}

DesTables build_tables() {
  DesTables t;
  for (int box = 0; box < 8; ++box) {
    for (int six = 0; six < 64; ++six) {
      // FIPS row/column decode of the 6-bit group, folded into the table.
      const int row = ((six & 0x20) >> 4) | (six & 0x01);
      const int col = (six >> 1) & 0x0f;
      const std::uint64_t nibble = kDesSBox[box][row * 16 + col];
      const std::uint64_t placed = nibble << (28 - 4 * box);
      t.sp[static_cast<std::size_t>(box)][static_cast<std::size_t>(six)] =
          static_cast<std::uint32_t>(
              des_permute(placed, kDesPermutationP, 32, 32));
    }
  }
  for (int b = 0; b < 8; ++b) {
    for (int v = 0; v < 256; ++v) {
      const std::uint64_t in = static_cast<std::uint64_t>(v) << (8 * (7 - b));
      t.ip[static_cast<std::size_t>(b)][static_cast<std::size_t>(v)] =
          des_permute(in, kDesInitialPermutation, 64, 64);
      t.fp[static_cast<std::size_t>(b)][static_cast<std::size_t>(v)] =
          des_permute(in, kDesFinalPermutation, 64, 64);
    }
  }
  return t;
}

}  // namespace

std::array<std::uint64_t, 16> des_key_schedule(BytesView key) {
  if (key.size() != 8) {
    throw CryptoError("DES: key must be 8 bytes");
  }
  std::array<std::uint64_t, 16> round_keys{};
  const std::uint64_t k = load_be64(key.data());
  const std::uint64_t cd = des_permute(k, kDesPermutedChoice1, 56, 64);
  auto c = static_cast<std::uint32_t>(cd >> 28);
  auto d = static_cast<std::uint32_t>(cd & 0x0fffffffu);
  for (int round = 0; round < 16; ++round) {
    c = rotl28(c, kDesLeftShifts[round]);
    d = rotl28(d, kDesLeftShifts[round]);
    const std::uint64_t merged =
        (static_cast<std::uint64_t>(c) << 28) | static_cast<std::uint64_t>(d);
    round_keys[static_cast<std::size_t>(round)] =
        des_permute(merged, kDesPermutedChoice2, 48, 56);
  }
  return round_keys;
}

const DesTables& des_tables() {
  static const DesTables tables = build_tables();
  return tables;
}

std::uint64_t load_be64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

void store_be64(std::uint64_t v, std::uint8_t* p) {
  for (int i = 7; i >= 0; --i) {
    p[i] = static_cast<std::uint8_t>(v);
    v >>= 8;
  }
}

}  // namespace keygraphs::crypto

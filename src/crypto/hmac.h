// HMAC (RFC 2104) over any Digest. Used to derive per-message integrity
// checks in configurations where signatures are disabled, and by the key
// derivation helper in the client layer.
#pragma once

#include <memory>

#include "crypto/digest.h"

namespace keygraphs::crypto {

/// Keyed MAC. One instance per key; mac() may be called repeatedly.
class Hmac {
 public:
  /// Keys longer than the digest block size are hashed first (RFC 2104).
  Hmac(DigestAlgorithm algorithm, BytesView key);

  /// MAC of a single message.
  [[nodiscard]] Bytes mac(BytesView message) const;

  /// Constant-time verification of a received tag.
  [[nodiscard]] bool verify(BytesView message, BytesView tag) const;

  [[nodiscard]] std::size_t tag_size() const noexcept;

 private:
  DigestAlgorithm algorithm_;
  Bytes inner_pad_;  // key ^ 0x36.. , one block
  Bytes outer_pad_;  // key ^ 0x5c.. , one block
};

}  // namespace keygraphs::crypto

// DES (FIPS 46-3), the symmetric cipher used by the paper's prototype.
//
// This is a straightforward table-driven implementation: correct, compact,
// and fast enough that one join/leave at n=8192 costs microseconds of
// encryption — matching the paper's observation that digital signatures, not
// DES, dominate server processing time.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/block_cipher.h"

namespace keygraphs::crypto {

/// Single-DES with 8-byte keys and 8-byte blocks. Parity bits of the key are
/// ignored, as in FIPS 46-3. Not secure by modern standards; provided for
/// fidelity to the paper (and for the DES-vs-AES ablation benchmark).
class Des final : public BlockCipher {
 public:
  static constexpr std::size_t kBlockSize = 8;
  static constexpr std::size_t kKeySize = 8;

  /// Builds the 16-round key schedule. Throws CryptoError if key size != 8.
  explicit Des(BytesView key);

  [[nodiscard]] std::size_t block_size() const noexcept override {
    return kBlockSize;
  }
  [[nodiscard]] std::size_t key_size() const noexcept override {
    return kKeySize;
  }
  [[nodiscard]] std::string name() const override { return "DES"; }

  void encrypt_block(const std::uint8_t* in, std::uint8_t* out) const override;
  void decrypt_block(const std::uint8_t* in, std::uint8_t* out) const override;

 private:
  void crypt_block(const std::uint8_t* in, std::uint8_t* out,
                   bool decrypt) const;

  std::array<std::uint64_t, 16> round_keys_{};  // 48-bit subkeys
};

}  // namespace keygraphs::crypto

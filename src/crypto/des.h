// DES (FIPS 46-3), the symmetric cipher used by the paper's prototype.
//
// The kernel runs on the fused lookup tables of crypto/des_tables.h: IP/FP
// as byte-indexed XOR tables, S-boxes combined with the P permutation, and
// the expansion E computed as bit windows of a rotated half — no per-bit
// permutation loops on the block path. The retained bit-loop kernel lives
// in crypto/reference.h and pins this one via the cross-check test.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/block_cipher.h"

namespace keygraphs::crypto {

/// Single-DES with 8-byte keys and 8-byte blocks. Parity bits of the key are
/// ignored, as in FIPS 46-3. Not secure by modern standards; provided for
/// fidelity to the paper (and for the DES-vs-AES ablation benchmark).
class Des final : public BlockCipher {
 public:
  static constexpr std::size_t kBlockSize = 8;
  static constexpr std::size_t kKeySize = 8;

  /// Builds the 16-round key schedule. Throws CryptoError if key size != 8.
  explicit Des(BytesView key);

  [[nodiscard]] std::size_t block_size() const noexcept override {
    return kBlockSize;
  }
  [[nodiscard]] std::size_t key_size() const noexcept override {
    return kKeySize;
  }
  [[nodiscard]] std::string name() const override { return "DES"; }

  void encrypt_block(const std::uint8_t* in, std::uint8_t* out) const override;
  void decrypt_block(const std::uint8_t* in, std::uint8_t* out) const override;

 private:
  void crypt_block(const std::uint8_t* in, std::uint8_t* out,
                   bool decrypt) const;

  std::array<std::uint64_t, 16> round_keys_{};  // 48-bit subkeys
};

}  // namespace keygraphs::crypto

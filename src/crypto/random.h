// SecureRandom: the library's only randomness source.
//
// Every component that needs random bytes (key generation, IVs, RSA prime
// search, workload shuffling) takes a SecureRandom&, which makes whole-system
// runs reproducible from a single seed — the property the experiment harness
// relies on to replay the paper's "same three request sequences per group
// size" methodology.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "crypto/chacha20.h"

namespace keygraphs::crypto {

/// ChaCha20-based generator.
///
/// Thread-safety contract: each draw is atomic — an internal mutex guards
/// the DRBG state, so concurrent callers never corrupt it. It is still a
/// single deterministic stream: *interleaving* of draws across threads is
/// scheduling-dependent, so reproducibility from a seed holds only for
/// draws whose order is serialized by the caller. The rekey pipeline draws
/// every fresh key and every mutation IV in the plan phase under the server
/// lock; off-lock resync planning draws IVs from the same stream, which is
/// safe but makes those IV values scheduling-dependent (they remain unique
/// and unpredictable — all that IVs require).
///
/// Tape capture/replay (the durable-journal contract): RngCapture records
/// every byte *the constructing thread* draws from one instance, and
/// RngTape later serves that thread's draws verbatim from the recording.
/// Both are thread-local, so a concurrent resync drawing IVs from the same
/// instance on another thread neither pollutes a capture nor consumes a
/// tape — the recorded tape is exactly the serialized plan-phase draws.
class SecureRandom {
 public:
  /// Seeded from the operating system (std::random_device).
  SecureRandom();

  /// Deterministic stream derived from `seed` — for tests and experiments.
  explicit SecureRandom(std::uint64_t seed);

  /// `n` fresh random bytes.
  [[nodiscard]] Bytes bytes(std::size_t n);

  /// Fill a caller-provided buffer.
  void fill(std::uint8_t* out, std::size_t n);

  /// Uniform integer in [0, bound). Throws if bound == 0.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound);

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform_unit();

 private:
  /// All draws funnel through here: serve from the calling thread's active
  /// tape if one targets this instance, otherwise draw from the DRBG under
  /// the mutex and mirror into the thread's active capture.
  void generate(std::uint8_t* out, std::size_t n);

  friend class RngCapture;
  friend class RngTape;

  ChaCha20Drbg drbg_;
  /// Heap-held so the instance stays movable (a moved-from instance is
  /// unusable, as standard for RAII handles).
  std::unique_ptr<std::mutex> mutex_;
};

/// Records every byte the constructing thread draws from `rng` while this
/// guard is alive. take() stops recording and returns the tape. One active
/// capture per (thread, instance); nesting throws.
class RngCapture {
 public:
  explicit RngCapture(SecureRandom& rng);
  ~RngCapture();

  RngCapture(const RngCapture&) = delete;
  RngCapture& operator=(const RngCapture&) = delete;

  /// Stops recording and returns everything captured so far.
  [[nodiscard]] Bytes take();

 private:
  const SecureRandom* rng_;
  Bytes buffer_;
  bool active_;
};

/// Serves the constructing thread's draws from `rng` out of a fixed tape
/// (journal replay). Draws past the end throw Error — a replayed operation
/// that consumes more randomness than was recorded has diverged. The tape
/// bytes must outlive the guard.
class RngTape {
 public:
  RngTape(SecureRandom& rng, BytesView tape);
  ~RngTape();

  RngTape(const RngTape&) = delete;
  RngTape& operator=(const RngTape&) = delete;

  /// Bytes not yet consumed; a fully replayed op leaves 0.
  [[nodiscard]] std::size_t remaining() const noexcept;

 private:
  const SecureRandom* rng_;
};

}  // namespace keygraphs::crypto

// SecureRandom: the library's only randomness source.
//
// Every component that needs random bytes (key generation, IVs, RSA prime
// search, workload shuffling) takes a SecureRandom&, which makes whole-system
// runs reproducible from a single seed — the property the experiment harness
// relies on to replay the paper's "same three request sequences per group
// size" methodology.
#pragma once

#include <cstdint>

#include "crypto/chacha20.h"

namespace keygraphs::crypto {

/// ChaCha20-based generator.
///
/// Thread-safety contract: an instance is NOT thread-safe — it is a single
/// deterministic stream, and interleaved draws from several threads would
/// both race on the DRBG state and destroy reproducibility. Use one
/// instance per thread, or confine all draws to one phase: the rekey
/// pipeline draws every IV and fresh key in the plan phase (under the
/// server lock) so the parallel seal workers never touch the RNG.
class SecureRandom {
 public:
  /// Seeded from the operating system (std::random_device).
  SecureRandom();

  /// Deterministic stream derived from `seed` — for tests and experiments.
  explicit SecureRandom(std::uint64_t seed);

  /// `n` fresh random bytes.
  [[nodiscard]] Bytes bytes(std::size_t n);

  /// Fill a caller-provided buffer.
  void fill(std::uint8_t* out, std::size_t n);

  /// Uniform integer in [0, bound). Throws if bound == 0.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound);

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform_unit();

 private:
  ChaCha20Drbg drbg_;
};

}  // namespace keygraphs::crypto

#include "crypto/cbc.h"

#include <cstring>

#include "common/error.h"
#include "crypto/random.h"

namespace keygraphs::crypto {

CbcCipher::CbcCipher(std::shared_ptr<const BlockCipher> cipher)
    : cipher_(std::move(cipher)) {
  if (!cipher_) throw CryptoError("CbcCipher: null cipher");
}

Bytes CbcCipher::encrypt(BytesView plaintext, SecureRandom& rng) const {
  return encrypt_with_iv(plaintext, rng.bytes(cipher_->block_size()));
}

Bytes CbcCipher::encrypt_with_iv(BytesView plaintext, BytesView iv) const {
  const std::size_t block = cipher_->block_size();
  if (iv.size() != block) throw CryptoError("CBC: IV must be one block");

  // PKCS#7: pad with `pad` bytes of value `pad`, 1..block.
  const std::size_t pad = block - plaintext.size() % block;
  Bytes padded(plaintext.begin(), plaintext.end());
  padded.insert(padded.end(), pad, static_cast<std::uint8_t>(pad));

  Bytes out(iv.begin(), iv.end());
  out.resize(block + padded.size());
  const std::uint8_t* chain = out.data();  // previous ciphertext block (or IV)
  for (std::size_t off = 0; off < padded.size(); off += block) {
    std::uint8_t* dst = out.data() + block + off;
    for (std::size_t i = 0; i < block; ++i) {
      dst[i] = padded[off + i] ^ chain[i];
    }
    cipher_->encrypt_block(dst, dst);
    chain = dst;
  }
  return out;
}

Bytes CbcCipher::decrypt(BytesView iv_and_ciphertext) const {
  const std::size_t block = cipher_->block_size();
  if (iv_and_ciphertext.size() < 2 * block ||
      iv_and_ciphertext.size() % block != 0) {
    throw CryptoError("CBC: ciphertext length invalid");
  }
  const std::size_t body = iv_and_ciphertext.size() - block;
  Bytes plain(body);
  for (std::size_t off = 0; off < body; off += block) {
    const std::uint8_t* ct = iv_and_ciphertext.data() + block + off;
    const std::uint8_t* chain = iv_and_ciphertext.data() + off;
    cipher_->decrypt_block(ct, plain.data() + off);
    for (std::size_t i = 0; i < block; ++i) {
      plain[off + i] ^= chain[i];
    }
  }
  const std::uint8_t pad = plain.back();
  if (pad == 0 || pad > block || pad > plain.size()) {
    throw CryptoError("CBC: bad padding");
  }
  for (std::size_t i = plain.size() - pad; i < plain.size(); ++i) {
    if (plain[i] != pad) throw CryptoError("CBC: bad padding");
  }
  plain.resize(plain.size() - pad);
  return plain;
}

std::size_t CbcCipher::ciphertext_size(std::size_t plaintext_size) const {
  const std::size_t block = cipher_->block_size();
  const std::size_t pad = block - plaintext_size % block;
  return block + plaintext_size + pad;
}

}  // namespace keygraphs::crypto

#include "crypto/cbc.h"

#include <cstring>

#include "common/error.h"
#include "crypto/aes_aesni.h"
#include "crypto/random.h"

namespace keygraphs::crypto {

CbcCipher::CbcCipher(std::shared_ptr<const BlockCipher> cipher)
    : cipher_(std::move(cipher)) {
  if (!cipher_) throw CryptoError("CbcCipher: null cipher");
}

Bytes CbcCipher::encrypt(BytesView plaintext, SecureRandom& rng) const {
  return encrypt_with_iv(plaintext, rng.bytes(cipher_->block_size()));
}

Bytes CbcCipher::encrypt_with_iv(BytesView plaintext, BytesView iv) const {
  Bytes out(ciphertext_size(plaintext.size()));
  encrypt_into(plaintext, iv, out.data());
  return out;
}

void CbcCipher::encrypt_into(BytesView plaintext, BytesView iv,
                             std::uint8_t* out) const {
  const std::size_t block = cipher_->block_size();
  if (iv.size() != block) throw CryptoError("CBC: IV must be one block");

  std::memcpy(out, iv.data(), block);
  const std::uint8_t* chain = out;  // previous ciphertext block (or IV)
  std::uint8_t* dst = out + block;

  // Whole plaintext blocks, XOR-chained straight into the output.
  const std::size_t whole = plaintext.size() / block;
  for (std::size_t b = 0; b < whole; ++b) {
    const std::uint8_t* src = plaintext.data() + b * block;
    for (std::size_t i = 0; i < block; ++i) dst[i] = src[i] ^ chain[i];
    cipher_->encrypt_block(dst, dst);
    chain = dst;
    dst += block;
  }

  // Final block: remaining plaintext tail plus streamed PKCS#7 padding
  // (pad bytes of value `pad`, 1..block — a full pad block on exact
  // multiples). No padded plaintext copy is ever materialized.
  const std::size_t tail = plaintext.size() - whole * block;
  const auto pad = static_cast<std::uint8_t>(block - tail);
  for (std::size_t i = 0; i < tail; ++i) {
    dst[i] = plaintext[whole * block + i] ^ chain[i];
  }
  for (std::size_t i = tail; i < block; ++i) dst[i] = pad ^ chain[i];
  cipher_->encrypt_block(dst, dst);
}

void CbcCipher::encrypt_many_into(std::span<const StreamOp> ops) {
  std::size_t i = 0;
  while (i < ops.size()) {
    // Collect a run of consecutive AES-NI ops and hand them to the fused
    // multi-stream kernel; a batch of independent CBC messages pipelines
    // even though each one's chain is serial.
    if (ops[i].cbc->cipher().kernel() == BlockKernel::kAesNi) {
      AesNiCbcStream streams[kAesNiMaxStreams];
      std::size_t n = 0;
      while (i < ops.size() && n < kAesNiMaxStreams &&
             ops[i].cbc->cipher().kernel() == BlockKernel::kAesNi) {
        const StreamOp& op = ops[i];
        if (op.iv.size() != Aes128Ni::kBlockSize) {
          throw CryptoError("CBC: IV must be one block");
        }
        streams[n].cipher = static_cast<const Aes128Ni*>(&op.cbc->cipher());
        streams[n].plaintext = op.plaintext.data();
        streams[n].plaintext_size = op.plaintext.size();
        streams[n].iv = op.iv.data();
        streams[n].out = op.out;
        ++n;
        ++i;
      }
      aesni_cbc_encrypt_streams(streams, n);
      continue;
    }
    ops[i].cbc->encrypt_into(ops[i].plaintext, ops[i].iv, ops[i].out);
    ++i;
  }
}

Bytes CbcCipher::decrypt(BytesView iv_and_ciphertext) const {
  const std::size_t block = cipher_->block_size();
  if (iv_and_ciphertext.size() < 2 * block ||
      iv_and_ciphertext.size() % block != 0) {
    throw CryptoError("CBC: ciphertext length invalid");
  }
  Bytes plain(iv_and_ciphertext.size() - block);
  // decrypt_into has already wiped the padding tail, so shrinking the
  // vector leaves no key material past the logical end.
  plain.resize(decrypt_into(iv_and_ciphertext, plain.data()));
  return plain;
}

std::size_t CbcCipher::decrypt_into(BytesView iv_and_ciphertext,
                                    std::uint8_t* out) const {
  const std::size_t block = cipher_->block_size();
  if (iv_and_ciphertext.size() < 2 * block ||
      iv_and_ciphertext.size() % block != 0) {
    throw CryptoError("CBC: ciphertext length invalid");
  }
  const std::size_t body = iv_and_ciphertext.size() - block;
  for (std::size_t off = 0; off < body; off += block) {
    const std::uint8_t* ct = iv_and_ciphertext.data() + block + off;
    const std::uint8_t* chain = iv_and_ciphertext.data() + off;
    cipher_->decrypt_block(ct, out + off);
    for (std::size_t i = 0; i < block; ++i) {
      out[off + i] ^= chain[i];
    }
  }
  const std::uint8_t pad = out[body - 1];
  bool ok = pad != 0 && pad <= block;
  if (ok) {
    for (std::size_t i = body - pad; i < body; ++i) {
      if (out[i] != pad) ok = false;
    }
  }
  if (!ok) {
    secure_wipe(out, body);
    throw CryptoError("CBC: bad padding");
  }
  secure_wipe(out + (body - pad), pad);
  return body - pad;
}

std::size_t CbcCipher::ciphertext_size(std::size_t plaintext_size) const {
  const std::size_t block = cipher_->block_size();
  const std::size_t pad = block - plaintext_size % block;
  return block + plaintext_size + pad;
}

}  // namespace keygraphs::crypto

// Reference (textbook) AES-128 and DES round functions.
//
// These are the repo's original straight-from-the-standard kernels: AES as
// per-byte SubBytes/ShiftRows/MixColumns with GF(2^8) multiplies in the
// round loop, DES as bit-by-bit FIPS permutations per round. They are kept
// for two jobs:
//
//   1. the cross-check oracle — tests/test_crypto_kernels.cpp asserts the
//      table-driven production kernels (crypto/aes.h, crypto/des.h) match
//      them block-for-block on random keys and blocks, both directions;
//   2. the baseline for bench/ablation_crypto_kernels, which measures the
//      table kernels' speedup over exactly this code (the seed kernels).
//
// Nothing on a production path should construct these.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/block_cipher.h"

namespace keygraphs::crypto {

/// FIPS 197 AES-128, one byte at a time. Bit-identical to Aes128, ~an order
/// of magnitude slower.
class ReferenceAes128 final : public BlockCipher {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;
  static constexpr int kRounds = 10;

  explicit ReferenceAes128(BytesView key);

  [[nodiscard]] std::size_t block_size() const noexcept override {
    return kBlockSize;
  }
  [[nodiscard]] std::size_t key_size() const noexcept override {
    return kKeySize;
  }
  [[nodiscard]] std::string name() const override {
    return "AES-128-reference";
  }

  void encrypt_block(const std::uint8_t* in, std::uint8_t* out) const override;
  void decrypt_block(const std::uint8_t* in, std::uint8_t* out) const override;

 private:
  std::array<std::uint32_t, 4 * (kRounds + 1)> round_keys_{};
};

/// FIPS 46-3 DES with bit-loop permutations. Bit-identical to Des.
class ReferenceDes final : public BlockCipher {
 public:
  static constexpr std::size_t kBlockSize = 8;
  static constexpr std::size_t kKeySize = 8;

  explicit ReferenceDes(BytesView key);

  [[nodiscard]] std::size_t block_size() const noexcept override {
    return kBlockSize;
  }
  [[nodiscard]] std::size_t key_size() const noexcept override {
    return kKeySize;
  }
  [[nodiscard]] std::string name() const override { return "DES-reference"; }

  void encrypt_block(const std::uint8_t* in, std::uint8_t* out) const override;
  void decrypt_block(const std::uint8_t* in, std::uint8_t* out) const override;

 private:
  void crypt_block(const std::uint8_t* in, std::uint8_t* out,
                   bool decrypt) const;

  std::array<std::uint64_t, 16> round_keys_{};  // 48-bit subkeys
};

}  // namespace keygraphs::crypto

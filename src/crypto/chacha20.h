// ChaCha20 block function (RFC 7539 layout) used as the core of the
// library's deterministic random generator. We do not use ChaCha20 for
// payload encryption — the paper's cipher is DES-CBC — only as a CSPRNG.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace keygraphs::crypto {

/// Raw ChaCha20 keystream generator: 32-byte key, 12-byte nonce, 32-bit
/// block counter. Exposed separately from the DRBG for unit testing of the
/// quarter-round and block function.
class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;
  static constexpr std::size_t kBlockSize = 64;

  ChaCha20(BytesView key, BytesView nonce, std::uint32_t counter = 0);

  /// Writes the keystream block for the current counter and advances it.
  void next_block(std::uint8_t out[kBlockSize]);

  /// RFC 7539 2.1 quarter round, exposed for testing.
  static void quarter_round(std::uint32_t& a, std::uint32_t& b,
                            std::uint32_t& c, std::uint32_t& d);

 private:
  std::array<std::uint32_t, 16> state_{};
};

/// Deterministic random bit generator over ChaCha20.
/// Seeded once (from the OS or from a fixed value for reproducible
/// experiments), then produces an endless keystream.
class ChaCha20Drbg {
 public:
  /// Seed must be non-empty; it is hashed to 32 bytes internally.
  explicit ChaCha20Drbg(BytesView seed);

  void fill(std::uint8_t* out, std::size_t n);

 private:
  void refill();

  ChaCha20 stream_;
  std::array<std::uint8_t, ChaCha20::kBlockSize> block_{};
  std::size_t used_ = ChaCha20::kBlockSize;
};

}  // namespace keygraphs::crypto

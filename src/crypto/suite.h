// CryptoSuite: the bundle of algorithm choices the paper's server reads from
// its specification file ("the encryption algorithm, the message digest
// algorithm, the digital signature algorithm, etc.").
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "crypto/block_cipher.h"
#include "crypto/digest.h"

namespace keygraphs::crypto {

/// Signature configuration. kNone reproduces the paper's "encryption only"
/// measurements; the RSA variants add a digest + signature to every rekey
/// message (or one per batch when Merkle batch signing is enabled).
enum class SignatureAlgorithm : std::uint8_t {
  kNone = 0,
  kRsa512 = 1,
  kRsa768 = 2,
  kRsa1024 = 3,
  kRsa2048 = 4,
};

/// Modulus size in bits for an RSA variant; 0 for kNone.
std::size_t signature_modulus_bits(SignatureAlgorithm algorithm);

std::string signature_name(SignatureAlgorithm algorithm);

/// The paper's evaluation configurations:
///   - encryption only:            {DES, kNone digest, kNone signature}
///   - encryption+digest+signature {DES, MD5, RSA-512}
struct CryptoSuite {
  CipherAlgorithm cipher = CipherAlgorithm::kDes;
  DigestAlgorithm digest = DigestAlgorithm::kNone;
  SignatureAlgorithm signature = SignatureAlgorithm::kNone;

  /// Digest used for signing; when `digest` is kNone but a signature is
  /// requested, signatures fall back to MD5 (the paper's choice).
  [[nodiscard]] DigestAlgorithm signing_digest() const {
    return digest == DigestAlgorithm::kNone ? DigestAlgorithm::kMd5 : digest;
  }

  [[nodiscard]] bool signs() const {
    return signature != SignatureAlgorithm::kNone;
  }
  [[nodiscard]] bool digests() const {
    return digest != DigestAlgorithm::kNone;
  }

  /// Symmetric key size for the configured cipher, in bytes.
  [[nodiscard]] std::size_t key_size() const {
    return cipher_key_size(cipher);
  }

  /// "DES/MD5/RSA-512"-style label for bench table headers.
  [[nodiscard]] std::string label() const;

  /// The configuration the paper measured with signatures on.
  static CryptoSuite paper_signed() {
    return {CipherAlgorithm::kDes, DigestAlgorithm::kMd5,
            SignatureAlgorithm::kRsa512};
  }

  /// The paper's "encryption only" configuration.
  static CryptoSuite paper_plain() {
    return {CipherAlgorithm::kDes, DigestAlgorithm::kNone,
            SignatureAlgorithm::kNone};
  }

  /// A modern equivalent for the examples: AES-128 / SHA-256 / RSA-2048.
  static CryptoSuite modern() {
    return {CipherAlgorithm::kAes128, DigestAlgorithm::kSha256,
            SignatureAlgorithm::kRsa2048};
  }
};

}  // namespace keygraphs::crypto

#include "crypto/des3.h"

#include "common/error.h"

namespace keygraphs::crypto {

namespace {

BytesView key_part(BytesView key, int index) {
  if (key.size() != Des3::kKeySize) {
    throw CryptoError("3DES: key must be 24 bytes");
  }
  return key.subspan(static_cast<std::size_t>(index) * Des::kKeySize,
                     Des::kKeySize);
}

}  // namespace

Des3::Des3(BytesView key)
    : first_(key_part(key, 0)),
      second_(key_part(key, 1)),
      third_(key_part(key, 2)) {}

void Des3::encrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  first_.encrypt_block(in, out);
  second_.decrypt_block(out, out);
  third_.encrypt_block(out, out);
}

void Des3::decrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  third_.decrypt_block(in, out);
  second_.encrypt_block(out, out);
  first_.decrypt_block(out, out);
}

}  // namespace keygraphs::crypto

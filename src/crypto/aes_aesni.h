// AES-128 on the AES-NI instruction set (one AESENC per round).
//
// The hardware counterpart of the table kernel in crypto/aes.h: the key
// schedule is expanded with AESKEYGENASSIST, encryption runs ten AESENC /
// AESENCLAST rounds on an XMM register, and decryption uses the
// equivalent-inverse-cipher round keys (AESIMC on the encryption schedule)
// with AESDEC. Output is bit-identical to the table and reference kernels
// — AES is AES — which the cross-check tests pin block-for-block.
//
// The class is always declared; on builds without the kernel (non-x86, or
// a compiler rejecting -maes) supported() is false and the constructor
// throws. Callers never pick this class directly: make_cipher dispatches
// through crypto::aesni_dispatch_enabled(), and only tests/benches
// construct it explicitly (skipping when !supported()).
//
// Beyond the one-block BlockCipher interface, this unit exports the
// multi-stream CBC kernel used by CbcCipher::encrypt_many_into: up to
// kAesNiMaxStreams *independent* CBC messages advance in lockstep, one
// block from each per step, so the 4-cycle AESENC latency of one stream is
// hidden behind the others' rounds. CBC's chain dependency makes a single
// message irreducibly serial; a batch of messages is not.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "crypto/block_cipher.h"

namespace keygraphs::crypto {

/// True when this translation unit was compiled with the AES-NI kernel
/// (independent of what the CPU supports — see CpuFeatures).
[[nodiscard]] bool aesni_kernel_compiled() noexcept;

class Aes128Ni final : public BlockCipher {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;
  static constexpr int kRounds = 10;

  /// Kernel compiled in AND the CPU reports AES-NI + SSE2.
  [[nodiscard]] static bool supported() noexcept;

  /// Expands both schedules with AESKEYGENASSIST/AESIMC. Throws
  /// CryptoError if key size != 16 or !supported().
  explicit Aes128Ni(BytesView key);

  [[nodiscard]] std::size_t block_size() const noexcept override {
    return kBlockSize;
  }
  [[nodiscard]] std::size_t key_size() const noexcept override {
    return kKeySize;
  }
  [[nodiscard]] std::string name() const override { return "AES-128-ni"; }
  [[nodiscard]] BlockKernel kernel() const noexcept override {
    return BlockKernel::kAesNi;
  }

  void encrypt_block(const std::uint8_t* in, std::uint8_t* out) const override;
  void decrypt_block(const std::uint8_t* in, std::uint8_t* out) const override;

  /// Raw encryption round keys, 11 x 16 bytes, 16-byte aligned — the
  /// multi-stream kernel below loads them directly.
  [[nodiscard]] const std::uint8_t* enc_round_keys() const noexcept {
    return enc_keys_.data();
  }

 private:
  alignas(16) std::array<std::uint8_t, kBlockSize*(kRounds + 1)> enc_keys_{};
  alignas(16) std::array<std::uint8_t, kBlockSize*(kRounds + 1)> dec_keys_{};
};

/// Upper bound on interleaved streams per multi-stream call: eight states
/// fit the 16 XMM registers with room for the working block, and eight
/// in-flight AESENCs cover the instruction's latency on every AES-NI core.
inline constexpr std::size_t kAesNiMaxStreams = 8;

/// One independent CBC stream of a multi-buffer batch. `out` receives
/// IV || ciphertext (same layout and streamed PKCS#7 padding as
/// CbcCipher::encrypt_into) and must not alias `plaintext` or `iv`.
struct AesNiCbcStream {
  const Aes128Ni* cipher = nullptr;
  const std::uint8_t* plaintext = nullptr;
  std::size_t plaintext_size = 0;
  const std::uint8_t* iv = nullptr;
  std::uint8_t* out = nullptr;
};

/// CBC-encrypts up to kAesNiMaxStreams independent streams with the round
/// loop interleaved across them. Byte-identical to calling encrypt_into on
/// each stream in sequence. Must only be called when supported().
void aesni_cbc_encrypt_streams(const AesNiCbcStream* streams, std::size_t n);

}  // namespace keygraphs::crypto

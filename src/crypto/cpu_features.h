// Runtime CPU feature detection and the AES kernel dispatch decision.
//
// The block-cipher hot path has three kernels: the retained bit-loop
// reference (crypto/reference.h, the cross-check oracle), the table-driven
// portable kernel (crypto/aes.h), and the AES-NI kernel (crypto/aes_aesni.h)
// that runs one round per instruction. Which one `make_cipher` hands out is
// decided here, once, from three inputs:
//
//   1. what this binary was compiled with (the AES-NI translation unit is
//      only built on x86 toolchains that accept -maes);
//   2. what the CPU reports via CPUID leaf 1 (AES-NI, SSE2);
//   3. the KG_DISABLE_AESNI environment override, so the portable path can
//      be exercised on hardware that would otherwise never take it.
//
// The decision is observable: the `crypto.kernel` gauge reads 1 while the
// hardware kernel is the dispatch choice and 0 on the table fallback, and
// cpu_features_json() puts the whole probe into every bench JSON header.
// Wire bytes never depend on the choice — AES is AES — which the
// cross-check KATs in tests/test_crypto_kernels.cpp pin.
#pragma once

#include <optional>
#include <string>

namespace keygraphs::crypto {

/// The CPUID probe result plus what this binary can actually run.
struct CpuFeatures {
  bool aesni = false;          ///< CPUID.1:ECX.AES[25]
  bool sse2 = false;           ///< CPUID.1:EDX.SSE2[26]
  bool ssse3 = false;          ///< CPUID.1:ECX.SSSE3[9]
  bool sse41 = false;          ///< CPUID.1:ECX.SSE4.1[19]
  bool pclmul = false;         ///< CPUID.1:ECX.PCLMULQDQ[1]
  bool aesni_compiled = false; ///< the AES-NI kernel is built into this binary
  bool disabled_by_env = false;  ///< KG_DISABLE_AESNI was set (and not "0")

  /// True when the hardware kernel can execute here: compiled in and the
  /// CPU reports both AES-NI and SSE2. Ignores the env override — tests
  /// cross-check the hardware kernel even when dispatch is forced portable.
  [[nodiscard]] bool aesni_usable() const noexcept {
    return aesni_compiled && aesni && sse2;
  }
};

/// The probe, run once on first use (thread-safe magic static). The env
/// override is read at the same time; set it before the first cipher is
/// constructed.
const CpuFeatures& cpu_features();

/// The live dispatch decision `make_cipher` consults for AES-128: usable
/// hardware, not disabled by env, and not overridden below. Updates the
/// `crypto.kernel` gauge as a side effect of any change.
[[nodiscard]] bool aesni_dispatch_enabled();

/// Test/bench override: force the dispatch decision to `enabled` (forcing
/// true on hardware where aesni_usable() is false throws CryptoError), or
/// pass nullopt to return to the probed default. The kernel ablation
/// sweeps table-vs-hardware in one process through this; production code
/// never calls it.
void override_aesni_dispatch(std::optional<bool> enabled);

/// `"aesni"` or `"table"` — the current dispatch choice, for labels.
[[nodiscard]] const char* aes_kernel_name();

/// The probe as a JSON object (no trailing newline), e.g.
/// {"aesni":true,"sse2":true,"ssse3":true,"sse4_1":true,"pclmul":true,
///  "aesni_compiled":true,"disabled_by_env":false,"dispatch":"aesni"}.
/// Benches embed it in their header line so every result records which
/// kernel actually ran.
[[nodiscard]] std::string cpu_features_json();

}  // namespace keygraphs::crypto

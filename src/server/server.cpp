#include "server/server.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "common/io.h"
#include "rekey/batch.h"
#include "telemetry/stage.h"

namespace keygraphs::server {

using telemetry::Stage;
using telemetry::StageCollector;
using telemetry::StageScope;

namespace {

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ServerConfig ServerConfig::star(ServerConfig base) {
  base.tree_degree = std::numeric_limits<int>::max();
  return base;
}

ServerConfig ServerConfig::star() { return star(ServerConfig{}); }

GroupKeyServer::GroupKeyServer(ServerConfig config,
                               transport::ServerTransport& transport,
                               AccessControl acl)
    : config_(config),
      transport_(transport),
      acl_(std::move(acl)),
      auth_(config.auth_master),
      rng_(config.rng_seed == 0 ? crypto::SecureRandom()
                                : crypto::SecureRandom(config.rng_seed)),
      encryptor_(config.suite.cipher, rng_) {
  tree_ = std::make_unique<KeyTree>(config_.tree_degree,
                                    config_.suite.key_size(), rng_);
  strategy_ = rekey::make_strategy(config_.strategy);
  set_signing_mode(config_.signing);
}

void GroupKeyServer::set_signing_mode(rekey::SigningMode mode) {
  if (mode == rekey::SigningMode::kPerMessage ||
      mode == rekey::SigningMode::kBatch) {
    if (!config_.suite.signs()) {
      throw ProtocolError("server: signing mode set but suite has no RSA");
    }
    if (!signer_) {
      signer_ = std::make_unique<crypto::RsaPrivateKey>(
          crypto::RsaPrivateKey::generate(
              rng_,
              crypto::signature_modulus_bits(config_.suite.signature)));
    }
  }
  config_.signing = mode;
  sealer_ = std::make_unique<rekey::RekeySealer>(
      mode, config_.suite.signing_digest(), signer_.get());
}

JoinResult GroupKeyServer::join(UserId user) {
  StageCollector stages;
  Bytes individual_key;
  {
    // Authentication/admission is excluded from the measured processing
    // time, as in the paper, but attributed to the auth stage; the
    // individual key is the session key that exchange produced.
    const StageScope scope(Stage::kAuth);
    if (!acl_.authorizes(user)) return JoinResult::kDenied;
    if (tree_->has_user(user)) return JoinResult::kDuplicate;
    individual_key = auth_.individual_key(user, config_.suite.key_size());
  }

  const auto started = std::chrono::steady_clock::now();
  std::optional<JoinRecord> record;
  {
    const StageScope scope(Stage::kTreeUpdate);  // keygen nests inside
    record.emplace(tree_->join(user, std::move(individual_key)));
  }
  encryptor_.reset_counters();
  std::vector<rekey::OutboundRekey> messages;
  {
    const StageScope scope(Stage::kEncrypt);
    messages = strategy_->plan_join(*record, encryptor_);
  }

  OpRecord op;
  op.kind = rekey::RekeyKind::kJoin;
  dispatch(std::move(messages), rekey::RekeyKind::kJoin,
           record->removed_nodes, op, started);
  return JoinResult::kGranted;
}

JoinResult GroupKeyServer::join_with_token(UserId user, BytesView token) {
  if (!auth_.verify_join_token(user, token)) {
    if (telemetry::enabled()) {
      static auto& denied =
          telemetry::Registry::global().counter("server.auth_denied");
      denied.add(1);
    }
    return JoinResult::kDenied;
  }
  return join(user);
}

void GroupKeyServer::leave(UserId user) {
  StageCollector stages;
  const auto started = std::chrono::steady_clock::now();
  std::optional<LeaveRecord> record;
  {
    const StageScope scope(Stage::kTreeUpdate);
    record.emplace(tree_->leave(user));  // throws for non-members
  }
  encryptor_.reset_counters();
  std::vector<rekey::OutboundRekey> messages;
  {
    const StageScope scope(Stage::kEncrypt);
    messages = strategy_->plan_leave(*record, encryptor_);
  }

  OpRecord op;
  op.kind = rekey::RekeyKind::kLeave;
  dispatch(std::move(messages), rekey::RekeyKind::kLeave,
           record->removed_nodes, op, started);
}

std::vector<UserId> GroupKeyServer::batch(
    const std::vector<UserId>& join_users,
    const std::vector<UserId>& leave_users) {
  StageCollector stages;
  std::vector<std::pair<UserId, Bytes>> joins;
  std::vector<UserId> admitted;
  {
    const StageScope scope(Stage::kAuth);
    for (UserId user : join_users) {
      if (!acl_.authorizes(user) || tree_->has_user(user)) continue;
      joins.emplace_back(
          user, auth_.individual_key(user, config_.suite.key_size()));
      admitted.push_back(user);
    }
  }

  const auto started = std::chrono::steady_clock::now();
  std::optional<BatchRecord> record;
  {
    const StageScope scope(Stage::kTreeUpdate);
    record.emplace(tree_->batch_update(joins, leave_users));
  }
  encryptor_.reset_counters();
  std::vector<rekey::OutboundRekey> messages;
  {
    const StageScope scope(Stage::kEncrypt);
    messages = rekey::plan_batch(*record, encryptor_);
  }

  OpRecord op;
  op.kind = rekey::RekeyKind::kBatch;
  dispatch(std::move(messages), rekey::RekeyKind::kBatch,
           record->removed_nodes, op, started);
  return admitted;
}

bool GroupKeyServer::leave_with_token(UserId user, BytesView token) {
  if (!auth_.verify_leave_token(user, token)) return false;
  if (!tree_->has_user(user)) return false;
  leave(user);
  return true;
}

void GroupKeyServer::resync(UserId user) {
  const std::vector<SymmetricKey> keys = tree_->keyset(user);  // may throw
  rekey::RekeyMessage message;
  message.group = config_.group;
  message.epoch = epoch_;  // replay of current state, not a new operation
  message.timestamp_us = now_us();
  message.kind = rekey::RekeyKind::kJoin;  // welcome-shaped
  message.strategy = config_.strategy;
  if (keys.size() > 1) {
    const std::vector<SymmetricKey> path(keys.begin() + 1, keys.end());
    message.blobs.push_back(encryptor_.wrap(keys.front(), path));
  }
  const std::vector<Bytes> wire = sealer_->seal(std::span(&message, 1));
  const Bytes datagram =
      rekey::Datagram{rekey::MessageType::kRekey, wire.front()}.encode();
  const rekey::Recipient to = rekey::Recipient::to_user(user);
  transport_.deliver(to, datagram,
                     [user] { return std::vector<UserId>{user}; });
  if (telemetry::enabled()) {
    static auto& resyncs =
        telemetry::Registry::global().counter("server.resyncs");
    resyncs.add(1);
  }
}

bool GroupKeyServer::resync_with_token(UserId user, BytesView token) {
  if (!auth_.verify_resync_token(user, token)) return false;
  if (!tree_->has_user(user)) return false;
  resync(user);
  return true;
}

Bytes GroupKeyServer::snapshot() const {
  ByteWriter writer;
  writer.u64(epoch_);
  writer.var_bytes(tree_->serialize());
  return writer.take();
}

void GroupKeyServer::restore(BytesView snapshot) {
  ByteReader reader(snapshot);
  const std::uint64_t epoch = reader.u64();
  const Bytes tree_bytes = reader.var_bytes();
  reader.expect_done();
  std::unique_ptr<KeyTree> restored =
      KeyTree::deserialize(tree_bytes, rng_);  // throws before any change
  tree_ = std::move(restored);
  epoch_ = epoch;
}

std::vector<UserId> GroupKeyServer::resolve_subgroup(
    KeyId include, std::optional<KeyId> exclude) const {
  std::vector<UserId> included;
  try {
    included = tree_->users_under(include);
  } catch (const ProtocolError&) {
    return {};  // the k-node vanished in the same operation
  }
  if (!exclude.has_value()) return included;
  std::vector<UserId> excluded;
  try {
    excluded = tree_->users_under(*exclude);
  } catch (const ProtocolError&) {
    return included;
  }
  std::vector<UserId> out;
  std::set_difference(included.begin(), included.end(), excluded.begin(),
                      excluded.end(), std::back_inserter(out));
  return out;
}

void GroupKeyServer::dispatch(
    std::vector<rekey::OutboundRekey> messages, rekey::RekeyKind kind,
    const std::vector<KeyId>& obsolete, OpRecord& op,
    std::chrono::steady_clock::time_point started) {
  ++epoch_;
  const std::uint64_t timestamp = now_us();
  std::vector<rekey::RekeyMessage> bodies;
  bodies.reserve(messages.size());
  {
    const StageScope scope(Stage::kSerialize);  // header stamping + copies
    for (rekey::OutboundRekey& outbound : messages) {
      outbound.message.group = config_.group;
      outbound.message.epoch = epoch_;
      outbound.message.timestamp_us = timestamp;
      outbound.message.kind = kind;
      outbound.message.obsolete = obsolete;
      bodies.push_back(outbound.message);
    }
  }
  const std::vector<Bytes> wire = sealer_->seal(bodies);

  op.key_encryptions = encryptor_.key_encryptions();
  op.signatures = sealer_->signatures_for(wire.size());
  op.messages = wire.size();
  op.min_message = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < wire.size(); ++i) {
    Bytes datagram;
    {
      const StageScope scope(Stage::kSerialize);
      datagram = rekey::Datagram{rekey::MessageType::kRekey, wire[i]}.encode();
    }
    op.bytes += datagram.size();
    op.min_message = std::min(op.min_message, datagram.size());
    op.max_message = std::max(op.max_message, datagram.size());
    const rekey::Recipient& to = messages[i].to;
    const StageScope scope(Stage::kSend);
    transport_.deliver(to, datagram, [this, to] {
      return to.kind == rekey::Recipient::Kind::kUser
                 ? std::vector<UserId>{to.user}
                 : resolve_subgroup(to.include, to.exclude);
    });
  }
  if (op.messages == 0) op.min_message = 0;
  op.processing_us = std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - started)
                         .count();
  if (const StageCollector* stages = StageCollector::current()) {
    op.stage_us = stages->breakdown();
  }
  stats_.record(op);
}

}  // namespace keygraphs::server

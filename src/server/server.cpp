#include "server/server.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "common/io.h"
#include "crypto/sha256.h"
#include "rekey/batch.h"
#include "telemetry/convergence.h"
#include "telemetry/stage.h"

namespace keygraphs::server {

using telemetry::Stage;
using telemetry::StageCollector;
using telemetry::StageScope;

ServerConfig ServerConfig::star(ServerConfig base) {
  base.tree_degree = std::numeric_limits<int>::max();
  return base;
}

ServerConfig ServerConfig::star() { return star(ServerConfig{}); }

GroupKeyServer::GroupKeyServer(ServerConfig config,
                               transport::ServerTransport& transport,
                               AccessControl acl)
    : config_(std::move(config)),
      transport_(transport),
      acl_(std::move(acl)),
      auth_(config_.auth_master),
      rng_(config_.rng_seed == 0 ? crypto::SecureRandom()
                                 : crypto::SecureRandom(config_.rng_seed)),
      executor_(config_.suite.cipher, config_.seal_threads,
                config_.schedule_cache_capacity),
      retransmit_(config_.retransmit_window),
      limiter_(config_.recovery_rate, config_.recovery_burst),
      gate_(config_.overload, /*lanes=*/1),
      health_(config_.overload) {
  tree_ = std::make_unique<KeyTree>(config_.tree_degree,
                                    config_.suite.key_size(), rng_);
  strategy_ = rekey::make_strategy(config_.strategy);
  set_signing_mode(config_.signing);
  if (config_.storage.enabled()) {
    durable_ = std::make_unique<storage::DurableStore>(
        storage::make_backend(config_.storage, /*lanes=*/1),
        config_.storage.snapshot_interval);
  }
}

void GroupKeyServer::begin_trace(PendingRekey& pending,
                                 rekey::RekeyKind kind) {
  // Replayed operations are reconstructions, not live traffic; emitting
  // spans for them would double-count the original dispatch.
  if (replaying_) return;
  if (!config_.trace_propagation || !telemetry::enabled()) return;
  pending.trace.trace_id = telemetry::next_trace_id();
  pending.trace.op_kind = static_cast<std::uint8_t>(kind);
}

std::uint64_t GroupKeyServer::now_us() const {
  // Replay pins the clock to the journaled timestamp: signatures cover it,
  // so reproducing the original sealed bytes requires the original time.
  if (replaying_) return pinned_clock_us_;
  if (config_.clock_us) return config_.clock_us();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void GroupKeyServer::set_signing_mode(rekey::SigningMode mode) {
  if (mode == rekey::SigningMode::kPerMessage ||
      mode == rekey::SigningMode::kBatch) {
    if (!config_.suite.signs()) {
      throw ProtocolError("server: signing mode set but suite has no RSA");
    }
    if (!signer_) {
      signer_ = std::make_unique<crypto::RsaPrivateKey>(
          crypto::RsaPrivateKey::generate(
              rng_,
              crypto::signature_modulus_bits(config_.suite.signature)));
    }
  }
  config_.signing = mode;
  sealer_ = std::make_unique<rekey::RekeySealer>(
      mode, config_.suite.signing_digest(), signer_.get());
}

JoinResult GroupKeyServer::join(UserId user) {
  PendingRekey pending;
  const JoinResult result = plan_join(user, pending);
  if (result != JoinResult::kGranted) return result;
  seal(pending);
  dispatch(std::move(pending));
  return JoinResult::kGranted;
}

JoinResult GroupKeyServer::join_with_token(UserId user, BytesView token) {
  PendingRekey pending;
  const JoinResult result = plan_join_with_token(user, token, pending);
  if (result != JoinResult::kGranted) return result;
  seal(pending);
  dispatch(std::move(pending));
  return JoinResult::kGranted;
}

void GroupKeyServer::leave(UserId user) {
  PendingRekey pending;
  plan_leave(user, pending);
  seal(pending);
  dispatch(std::move(pending));
}

bool GroupKeyServer::leave_with_token(UserId user, BytesView token) {
  PendingRekey pending;
  if (!plan_leave_with_token(user, token, pending)) return false;
  seal(pending);
  dispatch(std::move(pending));
  return true;
}

std::vector<UserId> GroupKeyServer::batch(
    const std::vector<UserId>& join_users,
    const std::vector<UserId>& leave_users) {
  PendingRekey pending;
  std::vector<UserId> admitted = plan_batch(join_users, leave_users, pending);
  seal(pending);
  dispatch(std::move(pending));
  return admitted;
}

void GroupKeyServer::resync(UserId user) {
  PendingRekey pending;
  plan_resync(user, pending);
  seal(pending);
  dispatch(std::move(pending));
}

bool GroupKeyServer::resync_with_token(UserId user, BytesView token) {
  PendingRekey pending;
  if (!plan_resync_with_token(user, token, pending)) return false;
  seal(pending);
  dispatch(std::move(pending));
  return true;
}

GateResult GroupKeyServer::offer_join(UserId user, BytesView token) {
  GateResult result;
  if (!config_.overload.enabled) return result;  // kAdmit: normal path
  // Validate before consuming any admission budget: a forged token or an
  // ACL reject must never shed (or displace) honest work.
  if (!auth_.verify_join_token(user, token) || !acl_.authorizes(user)) {
    result.denied = true;
    return result;
  }
  if (const auto it = buffered_.find(user); it != buffered_.end()) {
    if (it->second == BufferedKind::kJoin) {
      // Idempotent duplicate: rides the already-buffered join.
      result.action = overload::Admission::kCoalesce;
      return result;
    }
    // Join while this user's leave is buffered: a rejoin needs fresh keys
    // *after* the departure rekey, so shed it past the next flush.
    result.action = overload::Admission::kShed;
    result.retry_after_us = config_.overload.degraded_batch_period_us;
    return result;
  }
  if (tree_->has_user(user)) return result;  // duplicate join: cheap no-op
  const overload::Decision decision =
      gate_.admit(0, now_us(), health_.state());
  result.action = decision.action;
  result.retry_after_us = decision.retry_after_us;
  if (decision.action == overload::Admission::kCoalesce) {
    buffered_.emplace(user, BufferedKind::kJoin);
    buffered_joins_.push_back({user, now_us()});
  }
  return result;
}

GateResult GroupKeyServer::offer_leave(UserId user, BytesView token) {
  GateResult result;
  if (!config_.overload.enabled) return result;
  if (!auth_.verify_leave_token(user, token)) {
    result.denied = true;
    return result;
  }
  if (const auto it = buffered_.find(user); it != buffered_.end()) {
    if (it->second == BufferedKind::kLeave) {
      result.action = overload::Admission::kCoalesce;
      return result;
    }
    // Leave while the user's join is still buffered: after the flush the
    // user is a member and the retried leave succeeds.
    result.action = overload::Admission::kShed;
    result.retry_after_us = config_.overload.degraded_batch_period_us;
    return result;
  }
  if (!tree_->has_user(user)) {
    result.denied = true;  // matches leave_with_token's non-member answer
    return result;
  }
  const overload::Decision decision =
      gate_.admit(0, now_us(), health_.state());
  result.action = decision.action;
  result.retry_after_us = decision.retry_after_us;
  if (decision.action == overload::Admission::kCoalesce) {
    buffered_.emplace(user, BufferedKind::kLeave);
    buffered_leaves_.push_back({user, now_us()});
  }
  return result;
}

DegradedFlush GroupKeyServer::take_degraded_flush() {
  DegradedFlush flush;
  if (!config_.overload.enabled) return flush;
  if (buffered_joins_.empty() && buffered_leaves_.empty()) return flush;
  const std::uint64_t now = now_us();
  const bool full = buffered_.size() >= config_.overload.admission_queue;
  if (now < next_flush_us_ && !full) return flush;
  next_flush_us_ = now + config_.overload.degraded_batch_period_us;

  static auto& deadline_shed = telemetry::Registry::global().counter(
      "server.overload.deadline_shed",
      "Buffered ops shed because they waited past shed_deadline_us");
  const auto expired = [&](const BufferedOp& op) {
    return config_.overload.shed_deadline_us > 0 && now > op.offered_us &&
           now - op.offered_us > config_.overload.shed_deadline_us;
  };
  for (const BufferedOp& op : buffered_joins_) {
    if (expired(op)) {
      flush.shed.push_back(
          {op.user, true, config_.overload.degraded_batch_period_us});
      if (telemetry::enabled()) deadline_shed.add(1);
      continue;
    }
    // Filter against live membership: a direct join may have raced the
    // buffer (e.g. a resumed client went around the gate).
    if (!tree_->has_user(op.user)) flush.joins.push_back(op.user);
  }
  for (const BufferedOp& op : buffered_leaves_) {
    if (expired(op)) {
      flush.shed.push_back(
          {op.user, false, config_.overload.degraded_batch_period_us});
      if (telemetry::enabled()) deadline_shed.add(1);
      continue;
    }
    if (tree_->has_user(op.user)) flush.leaves.push_back(op.user);
  }
  const std::size_t released =
      buffered_joins_.size() + buffered_leaves_.size();
  buffered_joins_.clear();
  buffered_leaves_.clear();
  buffered_.clear();
  gate_.release(0, released);
  return flush;
}

overload::HealthState GroupKeyServer::evaluate_overload() {
  if (!config_.overload.enabled) return overload::HealthState::kHealthy;
  health_.note_sheds(gate_.take_sheds());
  health_.note_queue_depth(gate_.total_depth());
  if (config_.overload.slo_lag_epochs > 0) {
    health_.note_slo_lag(telemetry::ConvergenceMonitor::global().max_lag());
  }
  return health_.evaluate(now_us());
}

OverloadTick GroupKeyServer::poll_overload() {
  OverloadTick tick;
  if (!config_.overload.enabled) return tick;
  evaluate_overload();
  DegradedFlush flush = take_degraded_flush();
  tick.shed = std::move(flush.shed);
  if (flush.has_work()) {
    tick.joined = batch(flush.joins, flush.leaves);
    tick.flushed = true;
  }
  return tick;
}

namespace {

struct RetransmitMetrics {
  telemetry::Counter& nacks;
  telemetry::Counter& served;
  telemetry::Counter& datagrams;
  telemetry::Counter& out_of_window;
  telemetry::Counter& rate_limited;
  telemetry::Counter& resync_fallbacks;

  static RetransmitMetrics& get() {
    auto& registry = telemetry::Registry::global();
    static RetransmitMetrics* metrics = new RetransmitMetrics{
        registry.counter("rekey.retransmit.nacks"),
        registry.counter("rekey.retransmit.served"),
        registry.counter("rekey.retransmit.datagrams"),
        registry.counter("rekey.retransmit.out_of_window"),
        registry.counter("rekey.retransmit.rate_limited"),
        registry.counter("rekey.retransmit.resync_fallbacks"),
    };
    return *metrics;
  }
};

}  // namespace

std::optional<NackOutcome> GroupKeyServer::try_retransmit(
    UserId user, std::uint64_t have_epoch) {
  if (telemetry::enabled()) RetransmitMetrics::get().nacks.add(1);
  if (!limiter_.admit(user, now_us())) {
    if (telemetry::enabled()) RetransmitMetrics::get().rate_limited.add(1);
    return NackOutcome::kRateLimited;
  }
  if (retransmit_.enabled()) {
    if (const auto replays = retransmit_.collect(user, have_epoch)) {
      if (telemetry::enabled()) {
        RetransmitMetrics::get().served.add(1);
        RetransmitMetrics::get().datagrams.add(replays->size());
      }
      const rekey::Recipient to = rekey::Recipient::to_user(user);
      for (const BytesView datagram : *replays) {
        // Already framed kRekey bytes; unicast them back regardless of
        // their original (subgroup) addressing.
        transport_.deliver(to, datagram,
                           [user] { return std::vector<UserId>{user}; });
      }
      return NackOutcome::kRetransmitted;
    }
    if (telemetry::enabled()) RetransmitMetrics::get().out_of_window.add(1);
  }
  if (telemetry::enabled()) RetransmitMetrics::get().resync_fallbacks.add(1);
  return std::nullopt;  // caller falls back to resync
}

NackOutcome GroupKeyServer::handle_nack(UserId user,
                                        std::uint64_t have_epoch) {
  if (!tree_->view()->has_user(user)) {
    throw ProtocolError("nack from non-member user " + std::to_string(user));
  }
  if (const auto outcome = try_retransmit(user, have_epoch)) return *outcome;
  resync(user);
  return NackOutcome::kResynced;
}

std::optional<NackOutcome> GroupKeyServer::nack_with_token(
    UserId user, BytesView token, std::uint64_t have_epoch) {
  if (!auth_.verify_resync_token(user, token)) return std::nullopt;
  if (!tree_->view()->has_user(user)) return std::nullopt;
  return handle_nack(user, have_epoch);
}

void GroupKeyServer::finish_plan(PendingRekey& pending,
                                 rekey::RekeyPlanner& planner,
                                 std::vector<rekey::PlannedRekey> messages,
                                 rekey::RekeyKind op_kind,
                                 rekey::RekeyKind wire_kind,
                                 const std::vector<KeyId>& obsolete,
                                 bool advance_epoch,
                                 const StageCollector& stages) {
  if (advance_epoch) ++epoch_;
  // Mutations stamp the freshly advanced group epoch (the tree published
  // its post-mutation view under the same number, via stamp_next_epoch).
  // A resync replays its acquired view's epoch, so planning is consistent
  // even when the group counter moves concurrently.
  const std::uint64_t epoch = advance_epoch ? epoch_ : pending.view->epoch();
  const std::uint64_t timestamp = now_us();
  {
    const StageScope scope(Stage::kSerialize);  // header stamping
    for (rekey::PlannedRekey& message : messages) {
      message.header.group = config_.group;
      message.header.epoch = epoch;
      message.header.timestamp_us = timestamp;
      message.header.kind = wire_kind;
      message.header.obsolete = obsolete;
    }
  }
  if (pending.trace.active()) pending.trace.epoch = epoch;
  pending.timestamp_us = timestamp;
  pending.plan = planner.take(std::move(messages));
  pending.op.kind = op_kind;
  pending.op.key_encryptions = pending.plan.key_encryptions;
  pending.stage_us = stages.breakdown();
}

JoinResult GroupKeyServer::plan_join(UserId user, PendingRekey& pending) {
  StageCollector stages;
  Bytes individual_key;
  {
    // Authentication/admission is excluded from the measured processing
    // time, as in the paper, but attributed to the auth stage; the
    // individual key is the session key that exchange produced.
    const StageScope scope(Stage::kAuth);
    if (!acl_.authorizes(user)) return JoinResult::kDenied;
    if (tree_->has_user(user)) return JoinResult::kDuplicate;
    individual_key = auth_.individual_key(user, config_.suite.key_size());
  }

  // Record every rng byte the plan draws (tree keygen + planner IVs): the
  // tape is what makes a journal replay byte-identical on any replica.
  std::optional<crypto::RngCapture> capture;
  if (durable_ != nullptr && !replaying_) capture.emplace(rng_);

  begin_trace(pending, rekey::RekeyKind::kJoin);
  const telemetry::TraceBinding traced(pending.trace,
                                       telemetry::kServerProcess);
  std::optional<telemetry::ScopedSpan> plan_span;
  if (pending.trace.active()) plan_span.emplace("rekey.plan");

  pending.started = std::chrono::steady_clock::now();
  tree_->stamp_next_epoch(epoch_ + 1);
  std::optional<JoinRecord> record;
  {
    const StageScope scope(Stage::kTreeUpdate);  // keygen nests inside
    record.emplace(tree_->join(user, std::move(individual_key)));
  }
  pending.view = tree_->view();
  rekey::RekeyPlanner planner(config_.suite.cipher, rng_, pending.view);
  std::vector<rekey::PlannedRekey> messages;
  {
    const StageScope scope(Stage::kEncrypt);  // symbolic wraps + IV draws
    messages = strategy_->plan_join(*record, planner);
  }
  finish_plan(pending, planner, std::move(messages), rekey::RekeyKind::kJoin,
              rekey::RekeyKind::kJoin, record->removed_nodes,
              /*advance_epoch=*/true, stages);
  if (capture) {
    pending.commit = std::make_unique<storage::JournalRecord>();
    pending.commit->kind = storage::OpKind::kJoin;
    pending.commit->epoch = epoch_;
    pending.commit->timestamp_us = pending.timestamp_us;
    pending.commit->joins = {user};
    pending.commit->rng_tape = capture->take();
  }
  return JoinResult::kGranted;
}

JoinResult GroupKeyServer::plan_join_with_token(UserId user, BytesView token,
                                                PendingRekey& pending) {
  if (!auth_.verify_join_token(user, token)) {
    if (telemetry::enabled()) {
      static auto& denied =
          telemetry::Registry::global().counter("server.auth_denied");
      denied.add(1);
    }
    return JoinResult::kDenied;
  }
  return plan_join(user, pending);
}

void GroupKeyServer::plan_leave(UserId user, PendingRekey& pending) {
  StageCollector stages;
  std::optional<crypto::RngCapture> capture;
  if (durable_ != nullptr && !replaying_) capture.emplace(rng_);
  begin_trace(pending, rekey::RekeyKind::kLeave);
  const telemetry::TraceBinding traced(pending.trace,
                                       telemetry::kServerProcess);
  std::optional<telemetry::ScopedSpan> plan_span;
  if (pending.trace.active()) plan_span.emplace("rekey.plan");
  pending.started = std::chrono::steady_clock::now();
  tree_->stamp_next_epoch(epoch_ + 1);
  std::optional<LeaveRecord> record;
  {
    const StageScope scope(Stage::kTreeUpdate);
    record.emplace(tree_->leave(user));  // throws for non-members
  }
  pending.view = tree_->view();
  rekey::RekeyPlanner planner(config_.suite.cipher, rng_, pending.view);
  std::vector<rekey::PlannedRekey> messages;
  {
    const StageScope scope(Stage::kEncrypt);
    messages = strategy_->plan_leave(*record, planner);
  }
  finish_plan(pending, planner, std::move(messages), rekey::RekeyKind::kLeave,
              rekey::RekeyKind::kLeave, record->removed_nodes,
              /*advance_epoch=*/true, stages);
  if (capture) {
    pending.commit = std::make_unique<storage::JournalRecord>();
    pending.commit->kind = storage::OpKind::kLeave;
    pending.commit->epoch = epoch_;
    pending.commit->timestamp_us = pending.timestamp_us;
    pending.commit->leaves = {user};
    pending.commit->rng_tape = capture->take();
  }
  // A departed member no longer owes convergence; drop its lag gauge.
  // Replay skips this: the monitor belongs to the live timeline (an
  // in-process standby shares it with the primary).
  if (telemetry::enabled() && !replaying_) {
    telemetry::ConvergenceMonitor::global().forget_user(user);
  }
}

bool GroupKeyServer::plan_leave_with_token(UserId user, BytesView token,
                                           PendingRekey& pending) {
  if (!auth_.verify_leave_token(user, token)) return false;
  if (!tree_->has_user(user)) return false;
  plan_leave(user, pending);
  return true;
}

std::vector<UserId> GroupKeyServer::plan_batch(
    const std::vector<UserId>& join_users,
    const std::vector<UserId>& leave_users, PendingRekey& pending) {
  StageCollector stages;
  std::vector<std::pair<UserId, Bytes>> joins;
  std::vector<UserId> admitted;
  {
    const StageScope scope(Stage::kAuth);
    for (UserId user : join_users) {
      if (!acl_.authorizes(user) || tree_->has_user(user)) continue;
      joins.emplace_back(
          user, auth_.individual_key(user, config_.suite.key_size()));
      admitted.push_back(user);
    }
  }

  std::optional<crypto::RngCapture> capture;
  if (durable_ != nullptr && !replaying_) capture.emplace(rng_);

  begin_trace(pending, rekey::RekeyKind::kBatch);
  const telemetry::TraceBinding traced(pending.trace,
                                       telemetry::kServerProcess);
  std::optional<telemetry::ScopedSpan> plan_span;
  if (pending.trace.active()) plan_span.emplace("rekey.plan");

  pending.started = std::chrono::steady_clock::now();
  tree_->stamp_next_epoch(epoch_ + 1);
  std::optional<BatchRecord> record;
  {
    const StageScope scope(Stage::kTreeUpdate);
    record.emplace(tree_->batch_update(joins, leave_users));
  }
  pending.view = tree_->view();
  rekey::RekeyPlanner planner(config_.suite.cipher, rng_, pending.view);
  std::vector<rekey::PlannedRekey> messages;
  {
    const StageScope scope(Stage::kEncrypt);
    messages = rekey::plan_batch(*record, planner);
  }
  finish_plan(pending, planner, std::move(messages), rekey::RekeyKind::kBatch,
              rekey::RekeyKind::kBatch, record->removed_nodes,
              /*advance_epoch=*/true, stages);
  if (capture) {
    // The journal stores the *admitted* joiners, not the requested list:
    // replay re-admits exactly these and checks it got the same answer.
    pending.commit = std::make_unique<storage::JournalRecord>();
    pending.commit->kind = storage::OpKind::kBatch;
    pending.commit->epoch = epoch_;
    pending.commit->timestamp_us = pending.timestamp_us;
    pending.commit->joins = admitted;
    pending.commit->leaves = leave_users;
    pending.commit->rng_tape = capture->take();
  }
  if (telemetry::enabled() && !replaying_) {
    for (const UserId leaver : leave_users) {
      telemetry::ConvergenceMonitor::global().forget_user(leaver);
    }
  }
  return admitted;
}

void GroupKeyServer::plan_resync(UserId user, PendingRekey& pending) {
  StageCollector stages;
  begin_trace(pending, rekey::RekeyKind::kResync);
  const telemetry::TraceBinding traced(pending.trace,
                                       telemetry::kServerProcess);
  std::optional<telemetry::ScopedSpan> plan_span;
  if (pending.trace.active()) plan_span.emplace("rekey.plan");
  pending.started = std::chrono::steady_clock::now();
  // Whole plan runs on one acquired view (kept if the token path already
  // pinned one): no tree access, no group lock needed.
  if (!pending.view) pending.view = tree_->view();
  std::vector<SymmetricKey> keys;
  {
    const StageScope scope(Stage::kTreeUpdate);  // view read, no mutation
    keys = pending.view->keyset(user);  // throws for non-members
  }
  rekey::RekeyPlanner planner(config_.suite.cipher, rng_, pending.view);
  std::vector<rekey::PlannedRekey> messages;
  {
    const StageScope scope(Stage::kEncrypt);
    rekey::PlannedRekey welcome;
    welcome.header.strategy = config_.strategy;
    if (keys.size() > 1) {
      const std::vector<SymmetricKey> path(keys.begin() + 1, keys.end());
      welcome.ops.push_back(planner.wrap(keys.front(), path));
    }
    welcome.to = rekey::Recipient::to_user(user);
    messages.push_back(std::move(welcome));
  }
  // A replay of current state, not a new operation: no epoch advance, and
  // the wire message stays welcome-shaped (kJoin) so clients need no new
  // message kind. Only the OpRecord says kResync.
  finish_plan(pending, planner, std::move(messages),
              rekey::RekeyKind::kResync, rekey::RekeyKind::kJoin, {},
              /*advance_epoch=*/false, stages);
  if (telemetry::enabled()) {
    static auto& resyncs =
        telemetry::Registry::global().counter("server.resyncs");
    resyncs.add(1);
  }
}

bool GroupKeyServer::plan_resync_with_token(UserId user, BytesView token,
                                            PendingRekey& pending) {
  if (!auth_.verify_resync_token(user, token)) return false;
  pending.view = tree_->view();  // membership check and plan on one view
  if (!pending.view->has_user(user)) return false;
  plan_resync(user, pending);
  return true;
}

void GroupKeyServer::seal(PendingRekey& pending) {
  StageCollector stages;
  const telemetry::TraceBinding traced(pending.trace,
                                       telemetry::kServerProcess);
  std::optional<telemetry::ScopedSpan> seal_span;
  if (pending.trace.active()) seal_span.emplace("rekey.seal");
  const auto seal_started = std::chrono::steady_clock::now();
  pending.sealed = executor_.seal(pending.plan, *sealer_);
  // Seal-stage latency is an overload pressure signal: a sustained EWMA
  // above degrade_seal_us drives the health machine toward batching.
  if (config_.overload.enabled && !replaying_) {
    const auto elapsed_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - seal_started)
            .count());
    health_.note_seal_us(elapsed_us);
    gate_.note_seal(0, elapsed_us, now_us());
  }
  const telemetry::StageBreakdown& sealed_us = stages.breakdown();
  for (std::size_t i = 0; i < telemetry::kStageCount; ++i) {
    pending.stage_us[i] += sealed_us[i];
  }
}

void GroupKeyServer::dispatch(PendingRekey&& pending) {
  StageCollector stages;
  const telemetry::TraceBinding traced(pending.trace,
                                       telemetry::kServerProcess);
  std::optional<telemetry::ScopedSpan> dispatch_span;
  if (pending.trace.active()) dispatch_span.emplace("rekey.dispatch");
  OpRecord op = pending.op;
  op.signatures = sealer_->signatures_for(pending.sealed.size());
  op.messages = pending.sealed.size();
  op.min_message = std::numeric_limits<std::size_t>::max();
  // Epoch-advancing operations park their framed datagrams in the
  // retransmit window so a later NACK replays these exact bytes. Resyncs
  // are excluded: they re-stamp the current epoch and would collide with
  // the real rekey recorded under that number.
  const bool remember = retransmit_.enabled() &&
                        op.kind != rekey::RekeyKind::kResync &&
                        !pending.plan.messages.empty();
  std::vector<rekey::StoredDatagram> stored;
  if (remember) stored.reserve(pending.sealed.size());
  // Write-ahead commit: the journal record (op inputs + rng tape + sealed
  // digest) goes durable *before* the first datagram leaves and before the
  // epoch is published. A crash after this line replays the op; a crash
  // before it means no client ever saw the epoch, so nothing is lost.
  commit_to_journal(pending);
  // The publish timestamp for fleet convergence: recorded before the first
  // delivery, because in-process transports apply on the client inside
  // deliver() and an apply must never precede its publish. Resyncs replay
  // an already-published epoch, so they never re-publish it.
  if (telemetry::enabled() && op.kind != rekey::RekeyKind::kResync &&
      !pending.plan.messages.empty()) {
    telemetry::ConvergenceMonitor::global().note_publish(
        pending.plan.messages.front().header.epoch, now_us() * 1000,
        pending.view->user_count());
  }
  std::optional<rekey::TraceExtension> extension;
  if (pending.trace.active()) {
    extension = rekey::TraceExtension{pending.trace.trace_id,
                                      pending.trace.epoch,
                                      pending.trace.op_kind};
  }
  // Frame every datagram of the burst first, then hand the whole burst to
  // the transport at once: gather-capable transports (UDP sendmmsg)
  // amortize the per-datagram syscall across the burst, and the default
  // deliver_many preserves the old per-message delivery order exactly.
  std::vector<Bytes> datagrams(pending.sealed.size());
  {
    const StageScope scope(Stage::kSerialize);
    for (std::size_t i = 0; i < pending.sealed.size(); ++i) {
      datagrams[i] = rekey::Datagram{rekey::MessageType::kRekey,
                                     pending.sealed[i].wire, extension}
                         .encode();
      op.bytes += datagrams[i].size();
      op.min_message = std::min(op.min_message, datagrams[i].size());
      op.max_message = std::max(op.max_message, datagrams[i].size());
    }
  }
  {
    const StageScope scope(Stage::kSend);
    std::vector<transport::ServerTransport::OutboundDatagram> items;
    items.reserve(pending.sealed.size());
    for (std::size_t i = 0; i < pending.sealed.size(); ++i) {
      const rekey::Recipient to = pending.sealed[i].to;
      // Resolve fan-out on the plan-time view: identical to the live tree
      // in a sequential run, and immune to concurrent mutations between
      // plan and dispatch under the locked facade.
      items.push_back({to, datagrams[i], [view = pending.view, to] {
                         return to.kind == rekey::Recipient::Kind::kUser
                                    ? std::vector<UserId>{to.user}
                                    : view->resolve_subgroup(to.include,
                                                             to.exclude);
                       }});
    }
    transport_.deliver_many(items);
  }
  if (remember) {
    for (std::size_t i = 0; i < pending.sealed.size(); ++i) {
      stored.push_back(rekey::StoredDatagram{pending.sealed[i].to,
                                             std::move(datagrams[i])});
    }
  }
  if (remember) {
    retransmit_.record(pending.plan.messages.front().header.epoch,
                       pending.view, std::move(stored));
  }
  if (op.messages == 0) op.min_message = 0;
  op.processing_us = std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - pending.started)
                         .count();
  const telemetry::StageBreakdown& dispatch_us = stages.breakdown();
  for (std::size_t i = 0; i < telemetry::kStageCount; ++i) {
    op.stage_us[i] = pending.stage_us[i] + dispatch_us[i];
  }
  stats_.record(op);
  // Periodic compaction, keyed off this op's own view so the snapshot
  // epoch matches the last journaled record even when a concurrent plan
  // has already advanced the tree (locked facade).
  if (durable_ != nullptr && pending.commit != nullptr &&
      durable_->snapshot_due()) {
    ByteWriter writer;
    writer.u64(pending.view->epoch());
    writer.var_bytes(pending.view->serialize());
    durable_->compact(pending.view->epoch(), writer.take());
  }
}

Bytes GroupKeyServer::sealed_digest(
    const std::vector<rekey::SealedRekey>& sealed) {
  crypto::Sha256 digest;
  for (const rekey::SealedRekey& message : sealed) {
    digest.update(message.wire);
  }
  return digest.finish();
}

void GroupKeyServer::commit_to_journal(PendingRekey& pending) {
  if (pending.commit == nullptr || durable_ == nullptr) return;
  pending.commit->sealed_digest = sealed_digest(pending.sealed);
  durable_->append(*pending.commit);
}

Bytes GroupKeyServer::snapshot() const {
  // One acquired view carries both the epoch label and the structure, so a
  // snapshot taken while the writer mutates is still internally consistent.
  const TreeViewPtr view = tree_->view();
  ByteWriter writer;
  writer.u64(view->epoch());
  writer.var_bytes(view->serialize());
  return writer.take();
}

void GroupKeyServer::restore(BytesView snapshot) {
  ByteReader reader(snapshot);
  const std::uint64_t epoch = reader.u64();
  const Bytes tree_bytes = reader.var_bytes();
  reader.expect_done();
  std::unique_ptr<KeyTree> restored =
      KeyTree::deserialize(tree_bytes, rng_);  // throws before any change
  tree_ = std::move(restored);
  epoch_ = epoch;
  // Re-label the restored tree's view with the snapshot's group epoch.
  tree_->stamp_next_epoch(epoch);
  tree_->publish_view();
  // The old timeline's delivery state must not survive: the retransmit
  // ring holds sealed bytes for epochs that may disagree with the restored
  // tree (serving them would hand clients stale keys), and the
  // convergence monitor's publish ring carries timestamps from before the
  // restore. Journal replay (replaying_) re-anchors the monitor once, at
  // the end of recovery, rather than per restored snapshot.
  retransmit_.clear();
  if (telemetry::enabled() && !replaying_) {
    telemetry::ConvergenceMonitor::global().restart_from(epoch_);
  }
}

void GroupKeyServer::recover_from_storage(
    const storage::RecoveryOptions& options) {
  if (durable_ == nullptr) {
    throw storage::StorageError(
        "recover_from_storage: storage is not configured");
  }
  storage::RecoveredLog log = durable_->load(options);
  if (log.snapshot) restore(*log.snapshot);
  for (const storage::JournalRecord& record : log.records) {
    replay_record(record, options);
  }
  if (telemetry::enabled()) {
    static auto& replay_ops = telemetry::Registry::global().counter(
        "storage.replay_ops", "journal records replayed during recovery");
    replay_ops.add(log.records.size());
    telemetry::ConvergenceMonitor::global().restart_from(epoch_);
  }
}

namespace {

/// Saves and force-sets a flag for one scope (exception-safe), restoring
/// the caller's value on exit — the standby keeps replaying_ latched
/// across many replay_record calls.
class ScopedFlag {
 public:
  explicit ScopedFlag(bool& flag) : flag_(flag), saved_(flag) { flag_ = true; }
  ~ScopedFlag() { flag_ = saved_; }
  ScopedFlag(const ScopedFlag&) = delete;
  ScopedFlag& operator=(const ScopedFlag&) = delete;

 private:
  bool& flag_;
  bool saved_;
};

}  // namespace

void GroupKeyServer::replay_record(const storage::JournalRecord& record,
                                   const storage::RecoveryOptions& options) {
  const ScopedFlag replaying(replaying_);
  pinned_clock_us_ = record.timestamp_us;
  try {
    PendingRekey pending;
    {
      // Every plan-phase rng draw is served from the journaled tape; a
      // tape that runs short throws inside the drawing code, and leftover
      // bytes below mean the replayed plan did less work than the
      // original — either way, divergence.
      const crypto::RngTape tape(rng_, record.rng_tape);
      switch (record.kind) {
        case storage::OpKind::kJoin: {
          if (record.joins.size() != 1 || !record.leaves.empty()) {
            throw storage::ReplayDivergenceError(
                "replay: malformed join record at epoch " +
                std::to_string(record.epoch));
          }
          const JoinResult result = plan_join(record.joins.front(), pending);
          if (result != JoinResult::kGranted) {
            throw storage::ReplayDivergenceError(
                "replay: journaled join of user " +
                std::to_string(record.joins.front()) + " not granted (epoch " +
                std::to_string(record.epoch) + ")");
          }
          break;
        }
        case storage::OpKind::kLeave: {
          if (record.leaves.size() != 1 || !record.joins.empty()) {
            throw storage::ReplayDivergenceError(
                "replay: malformed leave record at epoch " +
                std::to_string(record.epoch));
          }
          plan_leave(record.leaves.front(), pending);
          break;
        }
        case storage::OpKind::kBatch: {
          const std::vector<UserId> admitted =
              plan_batch(record.joins, record.leaves, pending);
          if (admitted != record.joins) {
            throw storage::ReplayDivergenceError(
                "replay: batch at epoch " + std::to_string(record.epoch) +
                " admitted a different join set than the journal");
          }
          break;
        }
        case storage::OpKind::kPreload:
          throw storage::ReplayDivergenceError(
              "replay: preload record in a single-tree journal");
      }
      if (tape.remaining() != 0) {
        throw storage::ReplayDivergenceError(
            "replay: epoch " + std::to_string(record.epoch) + " left " +
            std::to_string(tape.remaining()) + " rng tape bytes unread");
      }
    }
    if (epoch_ != record.epoch) {
      throw storage::ReplayDivergenceError(
          "replay: operation advanced to epoch " + std::to_string(epoch_) +
          " but the journal recorded " + std::to_string(record.epoch));
    }
    seal(pending);
    absorb_replayed(std::move(pending), record, options);
  } catch (const storage::StorageError&) {
    throw;
  } catch (const Error& error) {
    // Plan/seal failures during replay (bad auth_master, wrong config,
    // tape exhaustion) all mean the same thing: this process cannot
    // reproduce the journaled state.
    throw storage::ReplayDivergenceError(std::string("replay: ") +
                                         error.what());
  }
}

void GroupKeyServer::absorb_replayed(PendingRekey&& pending,
                                     const storage::JournalRecord& record,
                                     const storage::RecoveryOptions& options) {
  if (options.verify_digests &&
      sealed_digest(pending.sealed) != record.sealed_digest) {
    throw storage::ReplayDivergenceError(
        "replay: epoch " + std::to_string(record.epoch) +
        " sealed bytes diverge from the journaled digest");
  }
  // No transport, no stats, no publish — but the retransmit window fills
  // exactly as the original dispatch filled it, so a promoted standby
  // serves NACKs for pre-failover epochs from warm sealed bytes.
  if (!retransmit_.enabled() || pending.plan.messages.empty()) return;
  std::vector<rekey::StoredDatagram> stored;
  stored.reserve(pending.sealed.size());
  for (const rekey::SealedRekey& sealed : pending.sealed) {
    Bytes datagram =
        rekey::Datagram{rekey::MessageType::kRekey, sealed.wire, std::nullopt}
            .encode();
    stored.push_back(rekey::StoredDatagram{sealed.to, std::move(datagram)});
  }
  retransmit_.record(pending.plan.messages.front().header.epoch, pending.view,
                     std::move(stored));
}

std::vector<UserId> GroupKeyServer::resolve_subgroup(
    KeyId include, std::optional<KeyId> exclude) const {
  return tree_->view()->resolve_subgroup(include, exclude);
}

}  // namespace keygraphs::server

// The group key server (paper Sections 3 and 5).
//
// Owns the key tree and executes the join/leave protocols under a
// configured rekeying strategy and signing mode. Every membership
// operation runs as a three-phase pipeline:
//
//   plan     — admission, tree mutation, symbolic rekey planning (WrapOps
//              with pre-drawn IVs), epoch advance and header stamping.
//              The only phase that touches mutable group state; under
//              LockedGroupKeyServer this is the whole critical section.
//   seal     — RekeyExecutor resolves the plan against its immutable key
//              snapshot: all encryptions, digests and signatures, fanned
//              across ServerConfig::seal_threads threads. Touches no
//              server state besides the (immutable-after-construction)
//              sealer, so concurrent seals are safe.
//   dispatch — datagram framing, transport delivery in plan order, stats.
//
// join()/leave()/batch()/resync() run the three phases back to back; the
// phase methods are public so a concurrent facade can overlap the seal
// phases of different operations. The server measures itself the way the
// paper's prototype did: processing time per request covering request
// handling, tree update, key generation, encryption, digest/signature
// computation, serialization and handoff to the send path — but never
// authentication.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/random.h"
#include "crypto/rsa.h"
#include "crypto/suite.h"
#include "keygraph/key_tree.h"
#include "rekey/codec.h"
#include "rekey/executor.h"
#include "rekey/retransmit.h"
#include "rekey/strategy.h"
#include "server/access_control.h"
#include "server/overload.h"
#include "server/stats.h"
#include "storage/durable.h"
#include "telemetry/trace.h"
#include "transport/transport.h"

namespace keygraphs::server {

struct ServerConfig {
  GroupId group = 1;
  /// Key tree degree d. The paper found d = 4 optimal. Use
  /// StarConfig() below for the star baseline.
  int tree_degree = 4;
  crypto::CryptoSuite suite;
  rekey::StrategyKind strategy = rekey::StrategyKind::kGroupOriented;
  rekey::SigningMode signing = rekey::SigningMode::kNone;
  /// 0 = seed from the OS; anything else gives a reproducible run (the
  /// paper replays the same request sequences across configurations).
  std::uint64_t rng_seed = 0;
  /// Master secret shared with the simulated authentication service.
  Bytes auth_master = bytes_of("keygraph");
  /// Seal-phase fan-out: 1 (default) seals serially on the calling
  /// thread; N > 1 adds N - 1 pool workers. Output bytes are identical
  /// for any value — work is index-keyed and all randomness is drawn in
  /// the plan phase.
  std::size_t seal_threads = 1;
  /// Clock for rekey message timestamps (microseconds since the Unix
  /// epoch); unset = system clock. Signatures cover the timestamp, so
  /// byte-reproducibility tests pin this. The recovery rate limiter reads
  /// the same clock, so loss-recovery tests are wall-clock free.
  std::function<std::uint64_t()> clock_us;
  /// Epochs of sealed rekey datagrams retained for NACK retransmission
  /// (rekey/retransmit.h); 0 disables the window, degrading every epoch-gap
  /// recovery to a full keyset resync. Spec key `retransmit_window`.
  std::size_t retransmit_window = 32;
  /// Per-user recovery-request budget: token-bucket refill rate in requests
  /// per second (<= 0 disables limiting) and burst capacity. Spec keys
  /// `recovery_rate` / `recovery_burst`.
  double recovery_rate = 16.0;
  double recovery_burst = 8.0;
  /// Capacity of the RekeyExecutor's wrapping-key ScheduleCache (expanded
  /// cipher schedules retained across seals; rekey/schedule_cache.h). The
  /// default fits every internal node of the simulator's largest trees; a
  /// sharded server gives each shard lane its own cache of this size. Spec
  /// key `schedule_cache_capacity`.
  std::size_t schedule_cache_capacity =
      rekey::RekeyExecutor::kDefaultCacheCapacity;
  /// Stamp every membership operation with a telemetry::TraceContext at
  /// plan time, emit rekey.plan/seal/dispatch spans for it, and carry the
  /// context on dispatched datagrams as the optional TraceExtension so
  /// client spans correlate with the server's. Off by default: without it
  /// the wire bytes are identical to the untraced format. Spec key
  /// `trace_propagation`.
  bool trace_propagation = false;
  /// Durable-state configuration (storage/backend.h). When enabled the
  /// server journals every committed membership operation before its
  /// datagrams leave the transport, compacts snapshots on the configured
  /// interval, and can rebuild byte-identical state from the journal via
  /// recover_from_storage(). Spec keys `storage`, `journal_dir`,
  /// `snapshot_interval`. Default: disabled (the pre-durability behavior).
  storage::StorageConfig storage;
  /// Overload-control configuration (server/overload.h). Off by default:
  /// every request is admitted immediately and no kRetryLater byte ever
  /// reaches the wire, so the pre-overload goldens hold. Spec keys
  /// `overload`, `admission_queue`, `shed_deadline_us`,
  /// `degraded_batch_period_us`.
  overload::OverloadConfig overload;

  /// Star baseline: unbounded degree.
  static ServerConfig star(ServerConfig base);
  static ServerConfig star();
};

/// Outcome of a join request.
enum class JoinResult : std::uint8_t {
  kGranted = 1,
  kDenied = 2,     // ACL rejection ("join-denied" in the paper)
  kDuplicate = 3,  // already a member
};

/// How the server satisfied a kNackRequest.
enum class NackOutcome : std::uint8_t {
  /// Gap inside the retransmit window: the missed datagrams were replayed
  /// unicast from the sealed-bytes ring (no plan/seal work).
  kRetransmitted = 1,
  /// Gap outside the window (or window disabled): full keyset resync.
  kResynced = 2,
  /// The user's recovery token bucket was empty; request dropped.
  kRateLimited = 3,
};

/// Outcome of offering a request to the overload gate (offer_join /
/// offer_leave). With overload disabled the gate always answers kAdmit
/// and the caller runs the normal immediate-rekey path.
struct GateResult {
  overload::Admission action = overload::Admission::kAdmit;
  /// For kShed: the retry-after hint to put on the kRetryLater reply.
  std::uint64_t retry_after_us = 0;
  /// The request failed validation (bad token, ACL rejection, leave from
  /// a non-member): rejected outright, not shed and not admitted.
  bool denied = false;
};

/// One degraded-mode flush: coalesced ops to run through batch() plus the
/// buffered ops whose shed deadline passed (answer those with
/// kRetryLater).
struct DegradedFlush {
  std::vector<UserId> joins;
  std::vector<UserId> leaves;
  std::vector<overload::ShedNotice> shed;
  [[nodiscard]] bool has_work() const noexcept {
    return !joins.empty() || !leaves.empty();
  }
};

/// What one poll_overload() tick did.
struct OverloadTick {
  std::vector<overload::ShedNotice> shed;
  std::vector<UserId> joined;
  bool flushed = false;
};

class GroupKeyServer {
 public:
  /// One membership operation in flight between the pipeline phases.
  struct PendingRekey {
    rekey::RekeyPlan plan;
    /// The tree view this plan was computed against (post-mutation for
    /// join/leave/batch, the acquired read view for resync). seal() reads
    /// key material through it and dispatch() resolves subgroup fan-out on
    /// it, so later mutations never skew an in-flight operation.
    TreeViewPtr view;
    OpRecord op;
    std::vector<rekey::SealedRekey> sealed;
    /// Stage self-time accumulated across the phases so far.
    telemetry::StageBreakdown stage_us{};
    std::chrono::steady_clock::time_point started{};
    /// Cross-process correlation context (inactive unless the server runs
    /// with trace_propagation): stamped in plan_*, epoch filled by
    /// finish_plan, rebound around every phase and copied onto each
    /// dispatched datagram.
    telemetry::TraceContext trace{};
    /// Header timestamp finish_plan stamped (what the journal records and
    /// replay pins the clock to).
    std::uint64_t timestamp_us = 0;
    /// The journal record this operation will commit in dispatch() —
    /// op inputs plus the plan-phase rng tape. Null when storage is
    /// disabled, during replay, and for resyncs (which mutate nothing).
    std::unique_ptr<storage::JournalRecord> commit;
  };

  GroupKeyServer(ServerConfig config, transport::ServerTransport& transport,
                 AccessControl acl = AccessControl::allow_all());

  /// Grants or denies a join. On grant, runs the configured join protocol:
  /// tree update, rekey message construction, sealing, sending.
  JoinResult join(UserId user);

  /// Join with an authentication token (the datagram path). The token must
  /// verify against the auth service or the request is denied.
  JoinResult join_with_token(UserId user, BytesView token);

  /// Runs the leave protocol. Throws ProtocolError for non-members.
  void leave(UserId user);

  /// Authenticated leave (the paper's {leave-request}_{k_u}).
  bool leave_with_token(UserId user, BytesView token);

  /// Batched membership update (periodic rekeying): admits every
  /// authorized joiner and removes every member in `leave_users`, rekeying
  /// each affected k-node exactly once and sending one multicast plus one
  /// welcome unicast per joiner. Returns the users actually joined (ACL
  /// rejections and duplicates are skipped). Throws ProtocolError if a
  /// leave targets a non-member or a user appears on both lists.
  std::vector<UserId> batch(const std::vector<UserId>& join_users,
                            const std::vector<UserId>& leave_users);

  // --- Pipeline phases -----------------------------------------------
  // plan_*() mutate group state and must be externally serialized; they
  // leave `pending` ready for seal(). seal() touches no mutable server
  // state (concurrent seals are fine). dispatch() sends and records; call
  // it in plan order to preserve epoch-ordered delivery.

  JoinResult plan_join(UserId user, PendingRekey& pending);
  JoinResult plan_join_with_token(UserId user, BytesView token,
                                  PendingRekey& pending);
  /// Throws ProtocolError for non-members.
  void plan_leave(UserId user, PendingRekey& pending);
  bool plan_leave_with_token(UserId user, BytesView token,
                             PendingRekey& pending);
  std::vector<UserId> plan_batch(const std::vector<UserId>& join_users,
                                 const std::vector<UserId>& leave_users,
                                 PendingRekey& pending);
  /// Plans a keyset replay at the current epoch (no tree mutation, no
  /// epoch advance). Runs entirely on an acquired TreeView — callers may
  /// invoke it without serializing against the plan_* mutators. Throws
  /// ProtocolError for non-members.
  void plan_resync(UserId user, PendingRekey& pending);
  bool plan_resync_with_token(UserId user, BytesView token,
                              PendingRekey& pending);

  void seal(PendingRekey& pending);
  void dispatch(PendingRekey&& pending);

  /// Switches the signing mode at runtime. The experiment harness builds
  /// the initial group unsigned (the paper never measures the build phase)
  /// and then turns signing on for the measured churn. Requires the suite
  /// to carry an RSA algorithm if `mode` signs. Not safe while an
  /// operation is in flight between phases.
  void set_signing_mode(rekey::SigningMode mode);

  [[nodiscard]] const KeyTree& tree() const noexcept { return *tree_; }
  /// Current epoch view of the tree — safe to read from any thread while
  /// the writer mutates.
  [[nodiscard]] TreeViewPtr tree_view() const { return tree_->view(); }
  [[nodiscard]] ServerStats& stats() noexcept { return stats_; }
  [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ServerConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const AuthService& auth() const noexcept { return auth_; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// Public verification key; null when the server does not sign.
  [[nodiscard]] const crypto::RsaPublicKey* public_key() const noexcept {
    return signer_ ? &signer_->public_key() : nullptr;
  }

  /// The root k-node id — clients use it to identify the group key.
  [[nodiscard]] KeyId root_id() const noexcept { return tree_->root_id(); }

  /// Replays a member's current keyset as a welcome-style unicast rekey
  /// message (all its path keys wrapped under its individual key, at the
  /// current epoch). Recovery path for clients that missed a rekey on a
  /// lossy transport. Does not advance the epoch or touch any key; the
  /// operation is recorded in stats as RekeyKind::kResync. Throws
  /// ProtocolError for non-members.
  void resync(UserId user);

  /// Authenticated resync (requires the auth service's resync token).
  bool resync_with_token(UserId user, BytesView token);

  /// Serves a negative acknowledgement from a member whose last fully
  /// applied epoch is `have_epoch`. Rate-limits per user first; then, if
  /// every missed epoch is still in the retransmit window, replays the
  /// member's datagrams unicast (already sealed — no crypto); otherwise
  /// falls back to resync(). Throws ProtocolError for non-members.
  NackOutcome handle_nack(UserId user, std::uint64_t have_epoch);

  /// Authenticated NACK (reuses the resync token — both are keyset-replay
  /// requests). nullopt on bad token or non-member.
  std::optional<NackOutcome> nack_with_token(UserId user, BytesView token,
                                             std::uint64_t have_epoch);

  /// The rate-limit + window-replay half of handle_nack: kRateLimited,
  /// kRetransmitted, or nullopt when the gap has left the window and the
  /// caller must fall back to a resync (the fallback is counted here).
  /// Touches only dispatch-phase state — LockedGroupKeyServer calls this
  /// under dispatch_mutex_ and routes the fallback through its own
  /// sequenced resync path.
  std::optional<NackOutcome> try_retransmit(UserId user,
                                            std::uint64_t have_epoch);

  // --- Overload control (server/overload.h) ---------------------------
  // The offer/flush paths mutate the same coalesce buffers the plan
  // phase's state lives next to, so they must be externally serialized
  // with the plan_* mutators (LockedGroupKeyServer runs them under its
  // plan mutex). With config.overload.enabled == false every offer
  // answers kAdmit and the caller runs the usual immediate path.

  /// Gates one join request. Validates the token and ACL first (bad
  /// requests are denied without consuming a queue slot), then asks the
  /// admission controller: kAdmit = caller runs join_with_token now;
  /// kCoalesce = buffered for the next degraded batch (the welcome
  /// arrives with the flush); kShed = answer kRetryLater.
  GateResult offer_join(UserId user, BytesView token);

  /// Gates one leave request (same contract as offer_join).
  GateResult offer_leave(UserId user, BytesView token);

  /// Drains the coalesce buffers when the batch tick is due (or the queue
  /// hit its bound): membership-filtered join/leave lists for batch(),
  /// plus deadline-expired ops to shed. Empty when nothing is due.
  DegradedFlush take_degraded_flush();

  /// Feeds the accumulated pressure signals (sheds, queue depth,
  /// convergence lag) into the HealthMonitor and applies its transition
  /// rules. Returns the resulting state.
  overload::HealthState evaluate_overload();

  /// Convenience tick for single-threaded deployments: re-evaluates
  /// health and, when a flush is due, runs it through batch(). Call
  /// periodically (e.g. every receive-loop pass).
  OverloadTick poll_overload();

  /// Current overload health (kHealthy whenever overload is off).
  [[nodiscard]] overload::HealthState health() const {
    return health_.state();
  }
  [[nodiscard]] overload::AdmissionController& admission() noexcept {
    return gate_;
  }
  [[nodiscard]] overload::HealthMonitor& health_monitor() noexcept {
    return health_;
  }

  /// The retransmit window, for introspection in tests and tools.
  [[nodiscard]] const rekey::RetransmitWindow& retransmit_window()
      const noexcept {
    return retransmit_;
  }

  /// Serializes the server's replicable state (epoch + full key tree with
  /// key material) for the standby-replica path Section 6 sketches. As
  /// sensitive as the server's memory; transfer over a secure channel only.
  [[nodiscard]] Bytes snapshot() const;

  /// Replaces this server's group state with a snapshot taken from another
  /// server with the same configuration. Clients notice nothing: node ids,
  /// versions and key material are identical. Throws ParseError on
  /// malformed snapshots (state is unchanged on failure). Also resets the
  /// delivery-side state the old timeline owned: the retransmit window
  /// (its sealed bytes predate the restored state) and the convergence
  /// monitor's published-epoch anchor.
  void restore(BytesView snapshot);

  // --- Durable state (storage/durable.h) -----------------------------

  /// Rebuilds group state from the configured storage backend: restores
  /// the compacted snapshot (if any), then replays every journaled
  /// operation through the real plan/seal pipeline with the recorded rng
  /// tape injected — reproducing byte-identical keys, epochs, and sealed
  /// datagrams, and rehydrating the retransmit window along the way.
  /// Call before serving traffic. Throws StorageError subclasses
  /// (JournalCorruptError / JournalTruncatedError / EpochGapError /
  /// ReplayDivergenceError) per storage/errors.h; state may be partially
  /// rebuilt on failure and must not be served. Throws StorageError when
  /// storage is not configured.
  void recover_from_storage(const storage::RecoveryOptions& options = {});

  /// Re-runs one journaled operation through plan/seal with its rng tape
  /// injected and absorbs the result without delivering datagrams or
  /// publishing telemetry. Boot recovery and the standby tail both feed
  /// records through here, in sequence order. Throws
  /// ReplayDivergenceError when the replayed operation does not reproduce
  /// the journal's epoch, admissions, or sealed digest.
  void replay_record(const storage::JournalRecord& record,
                     const storage::RecoveryOptions& options);

  /// The journal store, null when storage is disabled. Exposed for the
  /// standby tail and for tests to inspect compaction behavior.
  [[nodiscard]] storage::DurableStore* durable() noexcept {
    return durable_.get();
  }

  /// userset(include) - userset(exclude) on the current epoch view; the
  /// unicast fan-out transport uses this as its Resolver. Lock-free: safe
  /// to call from any thread while the writer mutates.
  [[nodiscard]] std::vector<UserId> resolve_subgroup(
      KeyId include, std::optional<KeyId> exclude) const;

 private:
  /// Stamps headers (epoch/timestamp/kind/obsolete), finalizes the plan
  /// and the OpRecord skeleton into `pending`.
  void finish_plan(PendingRekey& pending, rekey::RekeyPlanner& planner,
                   std::vector<rekey::PlannedRekey> messages,
                   rekey::RekeyKind op_kind, rekey::RekeyKind wire_kind,
                   const std::vector<KeyId>& obsolete, bool advance_epoch,
                   const telemetry::StageCollector& stages);
  [[nodiscard]] std::uint64_t now_us() const;
  /// Stamps a fresh trace context on `pending` when trace propagation and
  /// telemetry are both on (no-op otherwise).
  void begin_trace(PendingRekey& pending, rekey::RekeyKind kind);
  /// Digest over the concatenated sealed wire bytes — the journal's
  /// replay-divergence check value.
  [[nodiscard]] static Bytes sealed_digest(
      const std::vector<rekey::SealedRekey>& sealed);
  /// Journals pending.commit (if any) durably; called by dispatch() before
  /// the first datagram leaves.
  void commit_to_journal(PendingRekey& pending);
  /// Post-seal half of replay: verifies the digest and rehydrates the
  /// retransmit window (no transport, no stats, no publish).
  void absorb_replayed(PendingRekey&& pending,
                       const storage::JournalRecord& record,
                       const storage::RecoveryOptions& options);

  ServerConfig config_;
  transport::ServerTransport& transport_;
  AccessControl acl_;
  AuthService auth_;
  crypto::SecureRandom rng_;
  std::unique_ptr<crypto::RsaPrivateKey> signer_;
  std::unique_ptr<KeyTree> tree_;
  std::unique_ptr<rekey::RekeyStrategy> strategy_;
  rekey::RekeyExecutor executor_;
  std::unique_ptr<rekey::RekeySealer> sealer_;
  ServerStats stats_;
  std::uint64_t epoch_ = 0;
  /// Dispatch-phase state (recorded in dispatch(), read by handle_nack):
  /// under LockedGroupKeyServer both run behind dispatch_mutex_.
  rekey::RetransmitWindow retransmit_;
  rekey::RecoveryLimiter limiter_;
  /// Write-ahead journal; null when config_.storage is disabled.
  std::unique_ptr<storage::DurableStore> durable_;
  /// True while replaying journal records: suppresses re-journaling,
  /// transport delivery, telemetry publishes, and un-pins now_us() onto
  /// the replayed record's timestamp. The standby toggles this around its
  /// tail-applied records (friend below).
  bool replaying_ = false;
  std::uint64_t pinned_clock_us_ = 0;

  // Overload-control state. The gate and monitor are internally
  // synchronized; the coalesce buffers below follow the plan-phase
  // serialization contract (see the offer_* docs).
  overload::AdmissionController gate_;
  overload::HealthMonitor health_;
  enum class BufferedKind : std::uint8_t { kJoin, kLeave };
  struct BufferedOp {
    UserId user = 0;
    std::uint64_t offered_us = 0;
  };
  /// Invariant: a user appears at most once across both buffers (the map
  /// is the index; conflicting offers are shed, duplicates deduped).
  std::unordered_map<UserId, BufferedKind> buffered_;
  std::vector<BufferedOp> buffered_joins_;
  std::vector<BufferedOp> buffered_leaves_;
  std::uint64_t next_flush_us_ = 0;

  friend class StandbyServer;
};

}  // namespace keygraphs::server

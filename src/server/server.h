// The group key server (paper Sections 3 and 5).
//
// Owns the key tree, executes the join/leave protocols under a configured
// rekeying strategy and signing mode, sends the resulting rekey messages
// through a ServerTransport, and measures itself the way the paper's
// prototype did: processing time per request covering request handling,
// tree update, key generation, encryption, digest/signature computation,
// serialization and handoff to the send path — but never authentication.
#pragma once

#include <chrono>
#include <memory>
#include <optional>

#include "crypto/random.h"
#include "crypto/rsa.h"
#include "crypto/suite.h"
#include "keygraph/key_tree.h"
#include "rekey/codec.h"
#include "rekey/strategy.h"
#include "server/access_control.h"
#include "server/stats.h"
#include "transport/transport.h"

namespace keygraphs::server {

struct ServerConfig {
  GroupId group = 1;
  /// Key tree degree d. The paper found d = 4 optimal. Use
  /// StarConfig() below for the star baseline.
  int tree_degree = 4;
  crypto::CryptoSuite suite;
  rekey::StrategyKind strategy = rekey::StrategyKind::kGroupOriented;
  rekey::SigningMode signing = rekey::SigningMode::kNone;
  /// 0 = seed from the OS; anything else gives a reproducible run (the
  /// paper replays the same request sequences across configurations).
  std::uint64_t rng_seed = 0;
  /// Master secret shared with the simulated authentication service.
  Bytes auth_master = bytes_of("keygraph");

  /// Star baseline: unbounded degree.
  static ServerConfig star(ServerConfig base);
  static ServerConfig star();
};

/// Outcome of a join request.
enum class JoinResult : std::uint8_t {
  kGranted = 1,
  kDenied = 2,     // ACL rejection ("join-denied" in the paper)
  kDuplicate = 3,  // already a member
};

class GroupKeyServer {
 public:
  GroupKeyServer(ServerConfig config, transport::ServerTransport& transport,
                 AccessControl acl = AccessControl::allow_all());

  /// Grants or denies a join. On grant, runs the configured join protocol:
  /// tree update, rekey message construction, sealing, sending.
  JoinResult join(UserId user);

  /// Join with an authentication token (the datagram path). The token must
  /// verify against the auth service or the request is denied.
  JoinResult join_with_token(UserId user, BytesView token);

  /// Runs the leave protocol. Throws ProtocolError for non-members.
  void leave(UserId user);

  /// Authenticated leave (the paper's {leave-request}_{k_u}).
  bool leave_with_token(UserId user, BytesView token);

  /// Batched membership update (periodic rekeying): admits every
  /// authorized joiner and removes every member in `leave_users`, rekeying
  /// each affected k-node exactly once and sending one multicast plus one
  /// welcome unicast per joiner. Returns the users actually joined (ACL
  /// rejections and duplicates are skipped). Throws ProtocolError if a
  /// leave targets a non-member or a user appears on both lists.
  std::vector<UserId> batch(const std::vector<UserId>& join_users,
                            const std::vector<UserId>& leave_users);

  /// Switches the signing mode at runtime. The experiment harness builds
  /// the initial group unsigned (the paper never measures the build phase)
  /// and then turns signing on for the measured churn. Requires the suite
  /// to carry an RSA algorithm if `mode` signs.
  void set_signing_mode(rekey::SigningMode mode);

  [[nodiscard]] const KeyTree& tree() const noexcept { return *tree_; }
  [[nodiscard]] ServerStats& stats() noexcept { return stats_; }
  [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ServerConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const AuthService& auth() const noexcept { return auth_; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// Public verification key; null when the server does not sign.
  [[nodiscard]] const crypto::RsaPublicKey* public_key() const noexcept {
    return signer_ ? &signer_->public_key() : nullptr;
  }

  /// The root k-node id — clients use it to identify the group key.
  [[nodiscard]] KeyId root_id() const noexcept { return tree_->root_id(); }

  /// Replays a member's current keyset as a welcome-style unicast rekey
  /// message (all its path keys wrapped under its individual key, at the
  /// current epoch). Recovery path for clients that missed a rekey on a
  /// lossy transport. Does not advance the epoch or touch any key. Throws
  /// ProtocolError for non-members.
  void resync(UserId user);

  /// Authenticated resync (requires the auth service's resync token).
  bool resync_with_token(UserId user, BytesView token);

  /// Serializes the server's replicable state (epoch + full key tree with
  /// key material) for the standby-replica path Section 6 sketches. As
  /// sensitive as the server's memory; transfer over a secure channel only.
  [[nodiscard]] Bytes snapshot() const;

  /// Replaces this server's group state with a snapshot taken from another
  /// server with the same configuration. Clients notice nothing: node ids,
  /// versions and key material are identical. Throws ParseError on
  /// malformed snapshots (state is unchanged on failure).
  void restore(BytesView snapshot);

  /// userset(include) - userset(exclude) on the current tree; the unicast
  /// fan-out transport uses this as its Resolver.
  [[nodiscard]] std::vector<UserId> resolve_subgroup(
      KeyId include, std::optional<KeyId> exclude) const;

 private:
  void dispatch(std::vector<rekey::OutboundRekey> messages,
                rekey::RekeyKind kind, const std::vector<KeyId>& obsolete,
                OpRecord& record,
                std::chrono::steady_clock::time_point started);

  ServerConfig config_;
  transport::ServerTransport& transport_;
  AccessControl acl_;
  AuthService auth_;
  crypto::SecureRandom rng_;
  std::unique_ptr<crypto::RsaPrivateKey> signer_;
  std::unique_ptr<KeyTree> tree_;
  std::unique_ptr<rekey::RekeyStrategy> strategy_;
  rekey::RekeyEncryptor encryptor_;
  std::unique_ptr<rekey::RekeySealer> sealer_;
  ServerStats stats_;
  std::uint64_t epoch_ = 0;
};

}  // namespace keygraphs::server

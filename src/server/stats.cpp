#include "server/stats.h"

#include <algorithm>
#include <limits>
#include <optional>

#include "telemetry/metrics.h"

namespace keygraphs::server {

namespace {

Summary summarize_records(const std::vector<OpRecord>& records,
                          std::optional<rekey::RekeyKind> kind) {
  Summary summary;
  double processing_us = 0.0;
  telemetry::StageBreakdown stage_us{};
  std::size_t messages = 0, encryptions = 0, signatures = 0, bytes = 0;
  summary.min_messages = std::numeric_limits<std::size_t>::max();
  summary.min_message_bytes = std::numeric_limits<std::size_t>::max();
  for (const OpRecord& record : records) {
    if (kind.has_value() && record.kind != *kind) continue;
    ++summary.operations;
    processing_us += record.processing_us;
    for (std::size_t i = 0; i < telemetry::kStageCount; ++i) {
      stage_us[i] += record.stage_us[i];
    }
    messages += record.messages;
    encryptions += record.key_encryptions;
    signatures += record.signatures;
    bytes += record.bytes;
    summary.min_messages = std::min(summary.min_messages, record.messages);
    summary.max_messages = std::max(summary.max_messages, record.messages);
    if (record.messages > 0) {
      // min_message == 0 means the producer never filled the field (a real
      // encoded datagram is never empty); folding it in would make the
      // minimum report 0 from unset fields.
      if (record.min_message > 0) {
        summary.min_message_bytes =
            std::min(summary.min_message_bytes, record.min_message);
      }
      summary.max_message_bytes =
          std::max(summary.max_message_bytes, record.max_message);
    }
  }
  if (summary.operations == 0) {
    summary.min_messages = 0;
    summary.min_message_bytes = 0;
    return summary;
  }
  const auto ops = static_cast<double>(summary.operations);
  summary.avg_processing_ms = processing_us / ops / 1000.0;
  for (std::size_t i = 0; i < telemetry::kStageCount; ++i) {
    summary.avg_stage_us[i] = stage_us[i] / ops;
  }
  summary.avg_messages = static_cast<double>(messages) / ops;
  summary.avg_encryptions = static_cast<double>(encryptions) / ops;
  summary.avg_signatures = static_cast<double>(signatures) / ops;
  summary.avg_total_bytes = static_cast<double>(bytes) / ops;
  summary.avg_message_bytes =
      messages == 0 ? 0.0
                    : static_cast<double>(bytes) / static_cast<double>(messages);
  if (summary.min_message_bytes == std::numeric_limits<std::size_t>::max()) {
    summary.min_message_bytes = 0;
  }
  return summary;
}

const char* op_counter_name(rekey::RekeyKind kind) {
  switch (kind) {
    case rekey::RekeyKind::kJoin:
      return "server.ops.join";
    case rekey::RekeyKind::kLeave:
      return "server.ops.leave";
    case rekey::RekeyKind::kBatch:
      return "server.ops.batch";
    case rekey::RekeyKind::kResync:
      return "server.ops.resync";
  }
  return "server.ops.other";
}

/// Mirrors one operation into the global registry so the JSON/Prometheus
/// exporters track the same series the paper tables aggregate.
void publish(const OpRecord& record) {
  namespace tm = keygraphs::telemetry;
  auto& registry = tm::Registry::global();
  registry.counter(op_counter_name(record.kind)).add(1);
  static auto& processing = registry.histogram("server.processing_ns");
  static auto& per_op_messages = registry.histogram("server.messages_per_op");
  static auto& message_bytes = registry.histogram("server.message_bytes");
  static auto& rekey_messages = registry.counter("server.rekey_messages");
  static auto& rekey_bytes = registry.counter("server.rekey_bytes");
  static auto& encryptions = registry.counter("server.key_encryptions");
  static auto& signatures = registry.counter("server.signatures");
  processing.record(
      static_cast<std::uint64_t>(record.processing_us * 1000.0));
  per_op_messages.record(record.messages);
  if (record.messages > 0) {
    message_bytes.record(record.min_message);
    if (record.max_message != record.min_message) {
      message_bytes.record(record.max_message);
    }
  }
  rekey_messages.add(record.messages);
  rekey_bytes.add(record.bytes);
  encryptions.add(record.key_encryptions);
  signatures.add(record.signatures);
}

}  // namespace

double Summary::measured_stage_us() const noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < telemetry::kStageCount; ++i) {
    if (static_cast<telemetry::Stage>(i) == telemetry::Stage::kAuth) continue;
    total += avg_stage_us[i];
  }
  return total;
}

void ServerStats::record(const OpRecord& record) {
  records_.push_back(record);
  if (telemetry::enabled()) publish(record);
}

Summary ServerStats::summarize(rekey::RekeyKind kind) const {
  return summarize_records(records_, kind);
}

Summary ServerStats::summarize_all() const {
  return summarize_records(records_, std::nullopt);
}

}  // namespace keygraphs::server

#include "server/stats.h"

#include <algorithm>
#include <limits>
#include <optional>

namespace keygraphs::server {

namespace {

Summary summarize_records(const std::vector<OpRecord>& records,
                          std::optional<rekey::RekeyKind> kind) {
  Summary summary;
  double processing_us = 0.0;
  std::size_t messages = 0, encryptions = 0, signatures = 0, bytes = 0;
  summary.min_messages = std::numeric_limits<std::size_t>::max();
  summary.min_message_bytes = std::numeric_limits<std::size_t>::max();
  for (const OpRecord& record : records) {
    if (kind.has_value() && record.kind != *kind) continue;
    ++summary.operations;
    processing_us += record.processing_us;
    messages += record.messages;
    encryptions += record.key_encryptions;
    signatures += record.signatures;
    bytes += record.bytes;
    summary.min_messages = std::min(summary.min_messages, record.messages);
    summary.max_messages = std::max(summary.max_messages, record.messages);
    if (record.messages > 0) {
      summary.min_message_bytes =
          std::min(summary.min_message_bytes, record.min_message);
      summary.max_message_bytes =
          std::max(summary.max_message_bytes, record.max_message);
    }
  }
  if (summary.operations == 0) {
    summary.min_messages = 0;
    summary.min_message_bytes = 0;
    return summary;
  }
  const auto ops = static_cast<double>(summary.operations);
  summary.avg_processing_ms = processing_us / ops / 1000.0;
  summary.avg_messages = static_cast<double>(messages) / ops;
  summary.avg_encryptions = static_cast<double>(encryptions) / ops;
  summary.avg_signatures = static_cast<double>(signatures) / ops;
  summary.avg_total_bytes = static_cast<double>(bytes) / ops;
  summary.avg_message_bytes =
      messages == 0 ? 0.0
                    : static_cast<double>(bytes) / static_cast<double>(messages);
  if (summary.min_message_bytes == std::numeric_limits<std::size_t>::max()) {
    summary.min_message_bytes = 0;
  }
  return summary;
}

}  // namespace

Summary ServerStats::summarize(rekey::RekeyKind kind) const {
  return summarize_records(records_, kind);
}

Summary ServerStats::summarize_all() const {
  return summarize_records(records_, std::nullopt);
}

}  // namespace keygraphs::server

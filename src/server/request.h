// Hardened decoding of client request datagrams.
//
// Everything a client sends the server arrives as attacker-controlled
// bytes off the network. The raw ByteReader already bounds every read, but
// the daemon used to interleave decoding with dispatch; this module pulls
// the full decode + validation in front of any state change, translates
// every malformed input into a typed ProtocolError (never a crash, hang,
// or out-of-bounds read), and counts rejects in `server.bad_requests`.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "keygraph/key.h"
#include "rekey/message.h"

namespace keygraphs::server {

/// A fully decoded and validated client request.
struct Request {
  rekey::MessageType type = rekey::MessageType::kJoinRequest;
  UserId user = 0;
  Bytes token;
  /// kNackRequest only: the last epoch the client fully applied.
  std::uint64_t have_epoch = 0;
};

/// Authentication tokens are small MACs; anything larger is hostile.
inline constexpr std::size_t kMaxRequestTokenBytes = 256;

/// Decodes one request datagram. Accepts exactly the client->server
/// request types (join / leave / resync / nack) with their documented
/// payloads and nothing else: wrong magic, server->client types, unknown
/// types, truncated fields, oversized tokens, and trailing garbage all
/// throw ProtocolError (ParseErrors from the reader are translated) and
/// bump the `server.bad_requests` counter.
Request decode_request(BytesView data);

}  // namespace keygraphs::server

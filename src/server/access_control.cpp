#include "server/access_control.h"

#include "common/io.h"

namespace keygraphs::server {

AccessControl AccessControl::allow_all() { return AccessControl(true); }

AccessControl AccessControl::allow_list(std::vector<UserId> users) {
  AccessControl acl(false);
  for (UserId user : users) acl.allowed_.insert(user);
  return acl;
}

bool AccessControl::authorizes(UserId user) const {
  return open_ || allowed_.contains(user);
}

void AccessControl::grant(UserId user) { allowed_.insert(user); }

void AccessControl::revoke(UserId user) { allowed_.erase(user); }

AuthService::AuthService(Bytes master_secret)
    : hmac_(crypto::DigestAlgorithm::kSha256, master_secret) {}

Bytes AuthService::derive(const char* label, UserId user) const {
  ByteWriter writer;
  writer.var_string(label);
  writer.u64(user);
  return hmac_.mac(writer.data());
}

Bytes AuthService::individual_key(UserId user, std::size_t key_size) const {
  Bytes derived = derive("individual-key", user);
  // Expand if a cipher ever needs more than one HMAC block of key material.
  while (derived.size() < key_size) {
    const Bytes more = hmac_.mac(derived);
    derived.insert(derived.end(), more.begin(), more.end());
  }
  derived.resize(key_size);
  return derived;
}

Bytes AuthService::join_token(UserId user) const {
  return derive("join-token", user);
}

bool AuthService::verify_join_token(UserId user, BytesView token) const {
  return constant_time_equal(join_token(user), token);
}

Bytes AuthService::leave_token(UserId user) const {
  return derive("leave-token", user);
}

bool AuthService::verify_leave_token(UserId user, BytesView token) const {
  return constant_time_equal(leave_token(user), token);
}

Bytes AuthService::resync_token(UserId user) const {
  return derive("resync-token", user);
}

bool AuthService::verify_resync_token(UserId user, BytesView token) const {
  return constant_time_equal(resync_token(user), token);
}

}  // namespace keygraphs::server

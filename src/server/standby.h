// Hot-standby failover (the replicated-server sketch of paper Section 6,
// realized over the PR's write-ahead journal).
//
// A StandbyServer wraps a fully constructed — but not yet serving —
// GroupKeyServer that tails the primary's journal:
//
//   poll()    pulls newly durable records (and, after a compaction, the
//             fresh snapshot) from the shared storage backend and replays
//             them through the real plan/seal pipeline with the journaled
//             rng tapes injected. The standby's tree, epoch, and even its
//             retransmit window converge to byte-identical copies of the
//             primary's — without a single datagram leaving its transport.
//   promote() final catch-up, truncates the dead primary's torn tail (if
//             any), re-anchors the convergence monitor, and hands back the
//             inner server ready to serve joins/leaves/NACKs immediately.
//
// Sharing the journal: tests hand both servers one make_memory_backend()
// instance via StorageConfig::backend; across processes, both point
// `journal_dir` at the same directory (file or mmap backend) — the
// standby only ever reads until promotion.
//
// Caveat: replay reproduces signed bytes only when the replica owns the
// same RSA signer (same rng_seed), because the signing key is drawn at
// construction, outside any journaled operation. Unsigned groups replicate
// byte-identically regardless of seed.
#pragma once

#include <cstddef>

#include "server/server.h"
#include "storage/durable.h"

namespace keygraphs::server {

class StandbyServer {
 public:
  /// `config.storage` must be enabled (it locates the primary's journal).
  /// Construction is cheap; the first poll() does the initial catch-up.
  /// Throws StorageError when storage is not configured.
  StandbyServer(ServerConfig config, transport::ServerTransport& transport,
                AccessControl acl = AccessControl::allow_all());

  /// Applies every operation that became durable since the last poll.
  /// Returns the number of records applied. Safe to call at any cadence;
  /// each call leaves the standby at a consistent epoch. Throws storage
  /// errors (corrupt journal, replay divergence) — a standby that throws
  /// is out of the failover pool.
  std::size_t poll();

  /// Final catch-up and takeover. After this the inner server serves
  /// traffic (and journals to the same backend, continuing the sequence);
  /// poll() becomes a no-op. Idempotent.
  GroupKeyServer& promote();

  [[nodiscard]] GroupKeyServer& server() noexcept { return server_; }
  [[nodiscard]] const GroupKeyServer& server() const noexcept {
    return server_;
  }
  /// Epoch the standby has converged to so far.
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return server_.epoch();
  }
  [[nodiscard]] bool promoted() const noexcept { return promoted_; }

 private:
  GroupKeyServer server_;
  storage::Cursor cursor_;
  storage::RecoveryOptions options_;
  bool promoted_ = false;
};

}  // namespace keygraphs::server

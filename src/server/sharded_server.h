// The sharded group key server: per-shard arenas and seal pipelines under
// a thin root layer, for groups far past one tree's mutation throughput.
//
// The single-tree servers (server.h, locked_server.h) serialize every
// membership operation on one key tree and one rng. This server partitions
// the user population across K subtree shards (keygraph/sharded_tree.h):
// each shard owns its own arena-backed KeyTree, its own deterministic rng,
// its own RekeyExecutor seal lane with a private wrapping-key schedule
// cache, and its own mutex — a leaf join/leave locks exactly one shard and
// one short root-layer critical section, never a global tree lock.
//
// The thin root layer holds the only cross-shard state:
//
//   root key   — at K > 1, the group key G is a flat key wrapped under
//                every shard's subtree root. A membership change in shard
//                s refreshes G, appends one G-under-new-shard-root blob to
//                shard s's own rekey messages (clients decrypt it in the
//                same fixpoint pass), and broadcasts one tiny
//                G-under-shard-root message to each other shard. At K = 1
//                the layer vanishes: the shard root IS the group key and
//                the wire bytes are byte-identical to GroupKeyServer.
//   epochs     — one global epoch counter stitches the K per-shard update
//                streams into the single total order the client recovery
//                machinery (PR 5) and fleet convergence SLOs (PR 6)
//                already consume. Epoch tickets are allocated under the
//                root mutex at plan time and dispatch is sequenced by
//                ticket, so clients see exactly one contiguous epoch
//                stream regardless of which shards produced it.
//   recovery   — one RetransmitWindow over the stitched stream. Stored
//                datagrams pin the view they were addressed against
//                (StoredDatagram::view), so NACK replay filters correctly
//                even though one epoch's datagrams span several shards.
//   journal    — with ServerConfig::storage enabled, every committed op
//                appends one record to its shard's journal lane (plus the
//                stitched root-layer rng tape) before its dispatch ticket
//                is released. There is no cross-shard snapshot: recovery
//                replays the lanes merged by global commit sequence
//                (recover_from_storage), so snapshot_interval is ignored
//                at K > 1.
//
// Locking order (inner to outer acquisitions never reverse):
//   lane mutex -> root mutex, then (all dropped) sequence mutex ->
//   dispatch mutex. Seal runs with no lock held.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "keygraph/sharded_tree.h"
#include "server/server.h"
#include "telemetry/metrics.h"

namespace keygraphs::server {

struct ShardedServerConfig {
  ServerConfig base;
  /// Subtree shard count K. 1 = unsharded compatibility mode
  /// (byte-identical wire output to GroupKeyServer for the same base
  /// config and seed).
  std::size_t shards = 1;
};

class ShardedGroupKeyServer {
 public:
  ShardedGroupKeyServer(ShardedServerConfig config,
                        transport::ServerTransport& transport,
                        AccessControl acl = AccessControl::allow_all());
  ~ShardedGroupKeyServer();

  ShardedGroupKeyServer(const ShardedGroupKeyServer&) = delete;
  ShardedGroupKeyServer& operator=(const ShardedGroupKeyServer&) = delete;

  // --- Membership (concurrency-safe; one lane lock + root stitch each) --

  JoinResult join(UserId user);
  JoinResult join_with_token(UserId user, BytesView token);
  /// Throws ProtocolError for non-members.
  void leave(UserId user);
  bool leave_with_token(UserId user, BytesView token);
  /// Partitions the batch by shard and runs one batched update per
  /// affected shard (each with its own epoch). Returns the users actually
  /// joined. Throws ProtocolError if a leave targets a non-member or a
  /// user appears on both lists; shards already dispatched stay applied.
  std::vector<UserId> batch(const std::vector<UserId>& join_users,
                            const std::vector<UserId>& leave_users);

  // --- Recovery (PR 5 contract, unchanged for clients) ------------------

  /// Keyset replay at the current epoch: the user's shard path plus, at
  /// K > 1, the shared group key. No epoch advance.
  void resync(UserId user);
  bool resync_with_token(UserId user, BytesView token);
  NackOutcome handle_nack(UserId user, std::uint64_t have_epoch);
  std::optional<NackOutcome> nack_with_token(UserId user, BytesView token,
                                             std::uint64_t have_epoch);

  // --- Bulk build -------------------------------------------------------

  /// Admits `users` (ACL-filtered, duplicates skipped) without sending a
  /// single rekey message or advancing the epoch: the build phase of an
  /// experiment, like the unsharded harness's unsigned preload. Chunks
  /// each shard's admissions through batch_update so peak record/publish
  /// memory stays bounded at million-user scale. When storage is enabled
  /// each chunk journals one kPreload record (epoch 0) so recovery can
  /// rebuild the preloaded population too. Not safe concurrently with
  /// membership operations.
  void preload(const std::vector<UserId>& users);

  // --- Overload control (server/overload.h) -----------------------------
  // One admission lane per shard: a flash crowd hashing into one shard
  // (or one slow shard's open circuit breaker) sheds there without
  // touching its siblings. The coalesce buffers live under their own
  // overload mutex — offers never take a lane or root mutex.

  /// Gates one join (see GroupKeyServer::offer_join for the contract).
  GateResult offer_join(UserId user, BytesView token);
  GateResult offer_leave(UserId user, BytesView token);

  /// Degraded-mode tick: evaluates health and, when the batch tick is
  /// due, drains every shard's buffer into one batch() call (which
  /// partitions by shard internally, one epoch per affected shard).
  OverloadTick poll_overload();

  [[nodiscard]] overload::HealthState health() const {
    return health_->state();
  }
  [[nodiscard]] overload::AdmissionController& admission() noexcept {
    return *gate_;
  }
  [[nodiscard]] overload::HealthMonitor& health_monitor() noexcept {
    return *health_;
  }

  // --- Durable state (write-ahead journal) ------------------------------

  /// Boot-time crash recovery: replays the whole journal — preload chunks
  /// and committed ops, lanes merged by global commit sequence — through
  /// the real per-lane plan/seal pipeline with the journaled rng tapes
  /// (lane and root layer) injected. Call on a freshly constructed server
  /// before serving. Throws StorageError subclasses on corruption or
  /// divergence; also when the journal carries a single-tree snapshot
  /// (the sharded server compacts nothing and cannot restore one).
  void recover_from_storage(const storage::RecoveryOptions& options = {});
  /// Replays one journal record (kPreload rebuilds its chunk; others
  /// re-plan, re-seal, verify the sealed digest, and refill the
  /// retransmit window). Records must arrive in commit-sequence order.
  void replay_record(const storage::JournalRecord& record,
                     const storage::RecoveryOptions& options);
  /// Null when ServerConfig::storage is not enabled.
  [[nodiscard]] storage::DurableStore* durable() noexcept {
    return durable_.get();
  }

  // --- Introspection ----------------------------------------------------

  [[nodiscard]] std::uint64_t epoch() const;
  /// The group key's k-node id: the shard-0 tree root at K = 1, the
  /// shared root-layer key id otherwise.
  [[nodiscard]] KeyId root_id() const noexcept;
  /// Current group key (throws if the group is empty at K = 1).
  [[nodiscard]] SymmetricKey group_key() const;
  /// The user's full keyset for admit_snapshot: its shard path keys plus,
  /// at K > 1, the shared group key. Throws for non-members.
  [[nodiscard]] std::vector<SymmetricKey> keyset(UserId user) const;
  [[nodiscard]] std::size_t member_count() const;
  [[nodiscard]] bool has_member(UserId user) const;
  [[nodiscard]] std::size_t shard_count() const noexcept;
  [[nodiscard]] std::size_t shard_of(UserId user) const noexcept;
  [[nodiscard]] TreeViewPtr shard_view(std::size_t shard) const;
  [[nodiscard]] const crypto::RsaPublicKey* public_key() const noexcept;
  [[nodiscard]] const AuthService& auth() const noexcept { return auth_; }
  [[nodiscard]] ServerStats& stats() noexcept { return stats_; }
  [[nodiscard]] const ShardedServerConfig& config() const noexcept {
    return config_;
  }
  /// For tests/tools; read only while no operation is in flight.
  [[nodiscard]] const rekey::RetransmitWindow& retransmit_window()
      const noexcept {
    return retransmit_;
  }

 private:
  /// One shard's serialization + seal pipeline.
  struct Lane {
    std::mutex mutex;
    std::unique_ptr<rekey::RekeyExecutor> executor;
    telemetry::Gauge* users = nullptr;
    telemetry::Gauge* epoch = nullptr;
    telemetry::Gauge* seal_us = nullptr;
  };

  /// One stitched operation between plan and dispatch.
  struct Pending {
    rekey::RekeyPlan plan;
    /// Per plan-message addressing view (broadcast messages resolve
    /// against *other* shards' views).
    std::vector<TreeViewPtr> views;
    /// The mutated shard's post-op view (retransmit entry view).
    TreeViewPtr lane_view;
    OpRecord op;
    std::vector<rekey::SealedRekey> sealed;
    std::chrono::steady_clock::time_point started{};
    std::uint64_t epoch = 0;  // global ticket; 0 = unsequenced (resync)
    std::size_t shard = 0;
    std::size_t fleet = 0;  // total users at epoch allocation
    std::uint64_t trace_id = 0;
    /// Header timestamp stamped by stitch (journaled, pinned on replay).
    std::uint64_t timestamp_us = 0;
    /// Root-layer rng draws captured inside stitch's critical section.
    Bytes root_tape;
    /// Journal record built at plan time, appended at dispatch (after the
    /// sealed digest is known). Null when storage is off or replaying.
    std::unique_ptr<storage::JournalRecord> commit;
  };

  [[nodiscard]] std::uint64_t now_us() const;
  /// Admission + tree mutation + symbolic planning for one join; caller
  /// holds lanes_[shard]->mutex.
  JoinResult plan_join_locked(UserId user, std::size_t shard,
                              Pending& pending);
  void plan_leave_locked(UserId user, std::size_t shard, Pending& pending);
  /// Returns admitted joiners; pending.epoch stays 0 when the sub-batch
  /// was entirely no-op (nothing to stitch).
  std::vector<UserId> plan_batch_locked(
      std::size_t shard, const std::vector<UserId>& join_users,
      const std::vector<UserId>& leave_users, Pending& pending);
  /// Allocates the global epoch, refreshes the root layer, stamps headers
  /// and appends the shared-key ops/broadcasts. Caller holds the lane
  /// mutex; takes root_mutex_ internally. On exception the allocated
  /// ticket is retired.
  void stitch(Pending& pending, std::size_t shard, TreeViewPtr view,
              rekey::RekeyPlanner& planner,
              std::vector<rekey::PlannedRekey> messages,
              rekey::RekeyKind op_kind, rekey::RekeyKind wire_kind,
              const std::vector<KeyId>& obsolete);
  void plan_resync(UserId user, Pending& pending);
  /// Seal on the lane executor, then dispatch in global ticket order.
  void seal_and_dispatch(Lane& lane, Pending&& pending);
  void dispatch_locked(Lane& lane, Pending& pending, double seal_us);
  /// Skips ticket `epoch` in the dispatch sequence (failed operation).
  void retire(std::uint64_t epoch);
  std::optional<NackOutcome> try_retransmit_locked(UserId user,
                                                   std::uint64_t have_epoch);
  [[nodiscard]] SymmetricKey shared_key_locked() const;  // root_mutex_ held
  /// Digest-checks a replayed op, advances the dispatch cursor past its
  /// ticket, and refills the retransmit window — no transport, no stats.
  void absorb_replayed(Pending&& pending,
                       const storage::JournalRecord& record,
                       const storage::RecoveryOptions& options);

  ShardedServerConfig config_;
  transport::ServerTransport& transport_;
  AccessControl acl_;
  AuthService auth_;
  std::unique_ptr<ShardedKeyTree> tree_;
  std::unique_ptr<rekey::RekeyStrategy> strategy_;  // stateless, shared
  std::unique_ptr<crypto::RsaPrivateKey> signer_;
  std::unique_ptr<rekey::RekeySealer> sealer_;
  std::vector<std::unique_ptr<Lane>> lanes_;

  // Root layer: the only cross-shard mutable state.
  mutable std::mutex root_mutex_;
  std::uint64_t epoch_ = 0;
  crypto::SecureRandom root_rng_;  // G refreshes + stitch IVs (K > 1)
  Bytes group_secret_;             // current G secret (K > 1 only)
  KeyVersion group_version_ = 0;
  std::vector<SymmetricKey> shard_roots_;  // as of the last allocated epoch
  std::vector<TreeViewPtr> shard_views_;

  // Dispatch sequencing: tickets are epochs; dispatch in ticket order.
  std::mutex sequence_mutex_;
  std::condition_variable sequence_cv_;
  std::uint64_t next_dispatch_ = 1;
  std::mutex dispatch_mutex_;
  rekey::RetransmitWindow retransmit_;
  rekey::RecoveryLimiter limiter_;
  ServerStats stats_;

  // Durable state: per-shard journal lanes under one commit sequence.
  std::unique_ptr<storage::DurableStore> durable_;
  bool replaying_ = false;
  std::uint64_t pinned_clock_us_ = 0;

  telemetry::Gauge* fleet_users_ = nullptr;
  telemetry::Gauge* fleet_epoch_ = nullptr;
  telemetry::Gauge* fleet_seal_us_ = nullptr;

  // Overload control: K admission lanes plus per-shard coalesce buffers.
  // overload_mutex_ guards the buffers only and nests inside nothing —
  // poll_overload() drops it before calling batch().
  struct CoalescedOp {
    UserId user = 0;
    std::uint64_t offered_us = 0;
  };
  struct ShardBuffer {
    std::vector<CoalescedOp> joins;
    std::vector<CoalescedOp> leaves;
  };
  std::unique_ptr<overload::AdmissionController> gate_;
  std::unique_ptr<overload::HealthMonitor> health_;
  std::mutex overload_mutex_;
  std::vector<ShardBuffer> buffers_;
  /// user -> is-join; a user is buffered at most once across all shards.
  std::unordered_map<UserId, bool> buffered_;
  std::uint64_t next_flush_us_ = 0;
};

}  // namespace keygraphs::server

// Overload control: bounded admission, backpressure, and load shedding.
//
// The paper's immediate-rekey strategies assume the server can afford one
// rekey per request; its periodic batch rekeying exists precisely because
// real churn arrives in bursts that outrun sealing. This subsystem gives
// the server a bounded answer to a flash crowd or mass eviction instead of
// unbounded queueing on the plan mutex:
//
//   AdmissionController — per-lane token-bucket admission (a lane is a
//     shard under ShardedGroupKeyServer, the whole server otherwise) with
//     a bounded coalesce queue and a per-lane circuit breaker, so one slow
//     shard sheds without stalling its siblings. Requests past the bound
//     are shed with a retry-after hint, answered on the wire with
//     kRetryLater.
//
//   HealthMonitor — healthy → degraded → shedding state machine driven by
//     queue depth, seal-stage latency, convergence-SLO pressure, and shed
//     pressure. In the degraded states individual joins/leaves stop
//     rekeying immediately and are coalesced into one batch_update per
//     degraded_batch_period_us tick — trading per-op immediacy for bounded
//     work per epoch, exactly the periodic-rekeying trade the paper
//     prescribes. The state is exported as the `server.health` gauge and
//     surfaced on /healthz.
//
// With OverloadConfig::enabled = false (the default, spec `overload=off`)
// no decision ever sheds or coalesces and no kRetryLater byte reaches the
// wire, so all pre-existing wire goldens hold.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "keygraph/key.h"

namespace keygraphs::server::overload {

struct OverloadConfig {
  /// Master switch (spec key `overload`). Off: every request is admitted
  /// immediately and the server behaves byte-identically to the
  /// pre-overload build.
  bool enabled = false;
  /// Bound on the per-lane coalesce queue (spec key `admission_queue`).
  /// Offers beyond it are shed with a retry-after hint.
  std::size_t admission_queue = 1024;
  /// A buffered op that waits longer than this before its flush is shed
  /// back to the client instead of silently going stale (spec key
  /// `shed_deadline_us`). 0 disables the deadline.
  std::uint64_t shed_deadline_us = 250'000;
  /// Degraded-mode flush tick: buffered joins/leaves are drained into one
  /// batch_update at most this often (spec key `degraded_batch_period_us`).
  std::uint64_t degraded_batch_period_us = 100'000;
  /// Token-bucket admission per lane: refill rate in requests/second
  /// (<= 0 disables the bucket) and burst capacity. Mirrors
  /// rekey::RecoveryLimiter semantics.
  double admission_rate = 0.0;
  double admission_burst = 64.0;
  /// HealthMonitor thresholds: queue fraction (of admission_queue) that
  /// enters degraded / shedding.
  double degrade_queue_fraction = 0.5;
  double shed_queue_fraction = 0.9;
  /// Seal-latency pressure: EWMA seal time above this enters degraded
  /// (0 = signal off). Twice this opens the lane's circuit breaker.
  std::uint64_t degrade_seal_us = 0;
  /// Convergence pressure: fleet publish/apply lag of at least this many
  /// epochs enters degraded (0 = signal off).
  std::uint64_t slo_lag_epochs = 0;
  /// The monitor steps down one health level only after this long with no
  /// pressure signal (hysteresis against flapping).
  std::uint64_t recover_dwell_us = 200'000;
  /// Per-lane circuit breaker: this many consecutive sheds opens the lane
  /// for breaker_cooldown_us, during which every offer is shed instantly.
  std::size_t breaker_threshold = 8;
  std::uint64_t breaker_cooldown_us = 500'000;
};

/// Server health, in escalation order. Exported as the `server.health`
/// gauge (0/1/2) and surfaced on /healthz.
enum class HealthState : std::uint8_t {
  kHealthy = 0,
  kDegraded = 1,   // coalescing into periodic batches
  kShedding = 2,   // also refusing recovery traffic
};

[[nodiscard]] const char* health_name(HealthState state) noexcept;

/// What to do with one offered request.
enum class Admission : std::uint8_t {
  kAdmit = 1,     // rekey immediately (healthy path)
  kCoalesce = 2,  // buffered; will ride the next degraded batch
  kShed = 3,      // refused; answer kRetryLater with the hint
};

struct Decision {
  Admission action = Admission::kAdmit;
  /// For kShed: how long the client should wait before retrying, µs.
  std::uint64_t retry_after_us = 0;
};

/// A buffered op evicted at flush time (deadline passed or conflicting
/// op arrived); the daemon answers it with kRetryLater.
struct ShedNotice {
  UserId user = 0;
  bool join = true;
  std::uint64_t retry_after_us = 0;
};

/// Bounded per-lane admission: token bucket, queue bound, circuit
/// breaker. Internally synchronized — offer paths and the dispatch-side
/// note_seal() may run under different caller mutexes.
class AdmissionController {
 public:
  AdmissionController(const OverloadConfig& config, std::size_t lanes);

  /// Decides one offered request. `health` selects kAdmit (healthy) vs
  /// kCoalesce (degraded) for requests that pass the bucket and bound;
  /// kCoalesce increments the lane depth, which release() must return.
  Decision admit(std::size_t lane, std::uint64_t now_us, HealthState health);

  /// Returns `n` coalesced slots to the lane (flush or rejection).
  void release(std::size_t lane, std::size_t n);

  /// Feeds one seal-stage latency sample into the lane's EWMA; an EWMA
  /// above 2 × degrade_seal_us trips the lane's breaker.
  void note_seal(std::size_t lane, std::uint64_t seal_us,
                 std::uint64_t now_us);

  [[nodiscard]] std::size_t depth(std::size_t lane) const;
  /// Peak per-lane depth observed since construction (soak assertion:
  /// never exceeds admission_queue).
  [[nodiscard]] std::size_t max_depth() const;
  /// Total depth across lanes right now.
  [[nodiscard]] std::size_t total_depth() const;
  /// Sheds decided since the last call (HealthMonitor pressure input).
  [[nodiscard]] std::size_t take_sheds();
  [[nodiscard]] std::uint64_t total_sheds() const;
  [[nodiscard]] std::uint64_t seal_ewma_us(std::size_t lane) const;
  [[nodiscard]] bool breaker_open(std::size_t lane,
                                  std::uint64_t now_us) const;
  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_.size(); }

 private:
  struct LaneState {
    std::size_t depth = 0;
    double tokens = 0.0;
    std::uint64_t refilled_us = 0;
    bool bucket_primed = false;
    std::size_t consecutive_sheds = 0;
    std::uint64_t breaker_open_until_us = 0;
    std::uint64_t seal_ewma_us = 0;
  };

  /// Opens `lane`'s breaker (idempotent). Caller holds mutex_.
  void trip_breaker(LaneState& lane, std::uint64_t now_us);
  Decision shed(LaneState& lane, std::uint64_t retry_after_us,
                std::uint64_t now_us, bool count_consecutive);

  OverloadConfig config_;
  mutable std::mutex mutex_;
  std::vector<LaneState> lanes_;
  std::size_t max_depth_ = 0;
  std::size_t total_depth_ = 0;
  std::size_t sheds_window_ = 0;
  std::uint64_t sheds_total_ = 0;
  std::size_t breakers_open_ = 0;
};

/// healthy → degraded → shedding state machine. Escalates immediately on
/// pressure, steps down one level at a time after recover_dwell_us with
/// no pressure. Writes the `server.health` gauge on every transition
/// regardless of the telemetry switch — /healthz reads it.
class HealthMonitor {
 public:
  explicit HealthMonitor(const OverloadConfig& config);

  /// Pressure inputs, accumulated until the next evaluate().
  void note_queue_depth(std::size_t depth);
  void note_seal_us(std::uint64_t seal_us);
  void note_slo_lag(std::uint64_t lag_epochs);
  void note_sheds(std::size_t count);

  /// Applies the accumulated signals; returns the (possibly new) state.
  HealthState evaluate(std::uint64_t now_us);

  [[nodiscard]] HealthState state() const;

 private:
  OverloadConfig config_;
  mutable std::mutex mutex_;
  HealthState state_ = HealthState::kHealthy;
  std::size_t peak_depth_ = 0;
  std::uint64_t seal_ewma_us_ = 0;
  std::uint64_t slo_lag_ = 0;
  std::size_t sheds_ = 0;
  std::uint64_t calm_since_us_ = 0;
  bool calm_anchor_set_ = false;
};

/// Publishes `state` to the `server.health` gauge. Called by
/// HealthMonitor on transitions and by servers at construction so the
/// gauge is correct before the first evaluate().
void publish_health(HealthState state);

}  // namespace keygraphs::server::overload

#include "server/request.h"

#include <string>

#include "common/error.h"
#include "common/io.h"
#include "telemetry/metrics.h"

namespace keygraphs::server {

namespace {

[[noreturn]] void reject(const std::string& what) {
  static auto& bad_requests = telemetry::Registry::global().counter(
      "server.bad_requests",
      "Client datagrams rejected as malformed before any dispatch");
  if (telemetry::enabled()) bad_requests.add(1);
  throw ProtocolError("bad request: " + what);
}

}  // namespace

Request decode_request(BytesView data) {
  try {
    const rekey::Datagram datagram = rekey::Datagram::decode(data);
    switch (datagram.type) {
      case rekey::MessageType::kJoinRequest:
      case rekey::MessageType::kLeaveRequest:
      case rekey::MessageType::kResyncRequest:
      case rekey::MessageType::kNackRequest:
        break;
      default:
        reject("not a client request type");
    }
    // Clients never stamp trace extensions; a flagged request is either a
    // reflected server datagram or a forgery.
    if (datagram.trace.has_value()) reject("unexpected trace extension");

    ByteReader reader(datagram.payload);
    Request request;
    request.type = datagram.type;
    request.user = reader.u64();
    if (request.user == 0) reject("user id 0");
    request.token = reader.var_bytes();
    if (request.token.size() > kMaxRequestTokenBytes) reject("oversized token");
    if (request.type == rekey::MessageType::kNackRequest) {
      request.have_epoch = reader.u64();
    }
    reader.expect_done();
    return request;
  } catch (const ProtocolError&) {
    throw;  // already counted by reject()
  } catch (const ParseError& error) {
    // ParseError and ProtocolError are siblings under Error; the contract
    // here is one typed error for every malformed input.
    reject(error.what());
  }
}

}  // namespace keygraphs::server

#include "server/spec.h"

#include <charconv>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace keygraphs::server {

namespace {

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         (text.back() == ' ' || text.back() == '\t' || text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

[[noreturn]] void fail(int line, const std::string& what) {
  throw ProtocolError("spec line " + std::to_string(line) + ": " + what);
}

std::uint64_t parse_number(std::string_view value, int line) {
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    fail(line, "expected a number, got '" + std::string(value) + "'");
  }
  return out;
}

}  // namespace

ServerSpec parse_server_spec(std::string_view text) {
  ServerSpec spec;
  std::istringstream stream{std::string(text)};
  std::string raw;
  int line_number = 0;
  while (std::getline(stream, raw)) {
    ++line_number;
    std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      fail(line_number, "expected 'key = value'");
    }
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));

    if (key == "degree") {
      if (value == "star") {
        spec.config = ServerConfig::star(spec.config);
      } else {
        const std::uint64_t degree = parse_number(value, line_number);
        if (degree < 2 || degree > 1024) fail(line_number, "bad degree");
        spec.config.tree_degree = static_cast<int>(degree);
      }
    } else if (key == "strategy") {
      if (value == "user") {
        spec.config.strategy = rekey::StrategyKind::kUserOriented;
      } else if (value == "key") {
        spec.config.strategy = rekey::StrategyKind::kKeyOriented;
      } else if (value == "group") {
        spec.config.strategy = rekey::StrategyKind::kGroupOriented;
      } else if (value == "hybrid") {
        spec.config.strategy = rekey::StrategyKind::kHybrid;
      } else {
        fail(line_number, "unknown strategy '" + std::string(value) + "'");
      }
    } else if (key == "cipher") {
      if (value == "des") {
        spec.config.suite.cipher = crypto::CipherAlgorithm::kDes;
      } else if (value == "3des") {
        spec.config.suite.cipher = crypto::CipherAlgorithm::kDes3;
      } else if (value == "aes128") {
        spec.config.suite.cipher = crypto::CipherAlgorithm::kAes128;
      } else {
        fail(line_number, "unknown cipher '" + std::string(value) + "'");
      }
    } else if (key == "digest") {
      if (value == "none") {
        spec.config.suite.digest = crypto::DigestAlgorithm::kNone;
      } else if (value == "md5") {
        spec.config.suite.digest = crypto::DigestAlgorithm::kMd5;
      } else if (value == "sha1") {
        spec.config.suite.digest = crypto::DigestAlgorithm::kSha1;
      } else if (value == "sha256") {
        spec.config.suite.digest = crypto::DigestAlgorithm::kSha256;
      } else {
        fail(line_number, "unknown digest '" + std::string(value) + "'");
      }
    } else if (key == "signature") {
      if (value == "none") {
        spec.config.suite.signature = crypto::SignatureAlgorithm::kNone;
      } else if (value == "rsa512") {
        spec.config.suite.signature = crypto::SignatureAlgorithm::kRsa512;
      } else if (value == "rsa768") {
        spec.config.suite.signature = crypto::SignatureAlgorithm::kRsa768;
      } else if (value == "rsa1024") {
        spec.config.suite.signature = crypto::SignatureAlgorithm::kRsa1024;
      } else if (value == "rsa2048") {
        spec.config.suite.signature = crypto::SignatureAlgorithm::kRsa2048;
      } else {
        fail(line_number, "unknown signature '" + std::string(value) + "'");
      }
    } else if (key == "signing") {
      if (value == "none") {
        spec.config.signing = rekey::SigningMode::kNone;
      } else if (value == "digest") {
        spec.config.signing = rekey::SigningMode::kDigestOnly;
      } else if (value == "per-message") {
        spec.config.signing = rekey::SigningMode::kPerMessage;
      } else if (value == "batch") {
        spec.config.signing = rekey::SigningMode::kBatch;
      } else {
        fail(line_number, "unknown signing mode '" + std::string(value) +
                              "'");
      }
    } else if (key == "group") {
      spec.config.group =
          static_cast<GroupId>(parse_number(value, line_number));
    } else if (key == "seed") {
      spec.config.rng_seed = parse_number(value, line_number);
    } else if (key == "seal_threads") {
      const std::uint64_t threads = parse_number(value, line_number);
      if (threads < 1 || threads > 256) fail(line_number, "bad seal_threads");
      spec.config.seal_threads = static_cast<std::size_t>(threads);
    } else if (key == "retransmit_window") {
      const std::uint64_t window = parse_number(value, line_number);
      if (window > 4096) fail(line_number, "bad retransmit_window");
      spec.config.retransmit_window = static_cast<std::size_t>(window);
    } else if (key == "recovery_rate") {
      // Recovery-request tokens per user per second; 0 = unlimited.
      const std::uint64_t rate = parse_number(value, line_number);
      if (rate > 1'000'000) fail(line_number, "bad recovery_rate");
      spec.config.recovery_rate = static_cast<double>(rate);
    } else if (key == "recovery_burst") {
      const std::uint64_t burst = parse_number(value, line_number);
      if (burst < 1 || burst > 1'000'000) {
        fail(line_number, "bad recovery_burst");
      }
      spec.config.recovery_burst = static_cast<double>(burst);
    } else if (key == "auth_master") {
      try {
        spec.config.auth_master = from_hex(std::string(value));
      } catch (const std::exception&) {
        fail(line_number, "auth_master must be hex");
      }
      if (spec.config.auth_master.empty()) {
        fail(line_number, "auth_master must not be empty");
      }
    } else if (key == "initial_size") {
      spec.initial_size = parse_number(value, line_number);
    } else if (key == "port") {
      const std::uint64_t port = parse_number(value, line_number);
      if (port > 65535) fail(line_number, "bad port");
      spec.port = static_cast<std::uint16_t>(port);
    } else if (key == "acl") {
      if (value == "all") {
        spec.acl.reset();
      } else {
        std::vector<UserId> users;
        std::size_t start = 0;
        const std::string list(value);
        while (start <= list.size()) {
          const std::size_t comma = list.find(',', start);
          const std::string item(trim(std::string_view(list).substr(
              start, comma == std::string::npos ? std::string::npos
                                                : comma - start)));
          if (!item.empty()) {
            users.push_back(parse_number(item, line_number));
          }
          if (comma == std::string::npos) break;
          start = comma + 1;
        }
        spec.acl = std::move(users);
      }
    } else if (key == "telemetry") {
      if (value == "off") {
        spec.telemetry = TelemetryFormat::kOff;
      } else if (value == "json") {
        spec.telemetry = TelemetryFormat::kJson;
      } else if (value == "prom") {
        spec.telemetry = TelemetryFormat::kPrometheus;
      } else {
        fail(line_number,
             "unknown telemetry format '" + std::string(value) + "'");
      }
    } else if (key == "telemetry_period") {
      const std::uint64_t period = parse_number(value, line_number);
      if (period > 86400) fail(line_number, "bad telemetry_period");
      spec.telemetry_period_s = static_cast<std::uint32_t>(period);
    } else if (key == "telemetry_http_port") {
      const std::uint64_t port = parse_number(value, line_number);
      if (port > 65535) fail(line_number, "bad telemetry_http_port");
      spec.telemetry_http_port = static_cast<std::uint16_t>(port);
    } else if (key == "trace_propagation") {
      if (value == "on") {
        spec.config.trace_propagation = true;
      } else if (value == "off") {
        spec.config.trace_propagation = false;
      } else {
        fail(line_number, "trace_propagation must be on or off");
      }
    } else if (key == "convergence_slo_us") {
      spec.convergence_slo_us = parse_number(value, line_number);
    } else if (key == "schedule_cache_capacity") {
      const std::uint64_t capacity = parse_number(value, line_number);
      if (capacity < 1 || capacity > (1u << 20)) {
        fail(line_number, "bad schedule_cache_capacity");
      }
      spec.config.schedule_cache_capacity =
          static_cast<std::size_t>(capacity);
    } else if (key == "storage") {
      if (value == "none") {
        spec.config.storage.kind = storage::Kind::kNone;
      } else if (value == "memory") {
        spec.config.storage.kind = storage::Kind::kMemory;
      } else if (value == "file") {
        spec.config.storage.kind = storage::Kind::kFile;
      } else if (value == "mmap") {
        spec.config.storage.kind = storage::Kind::kMmap;
      } else {
        fail(line_number, "unknown storage backend '" + std::string(value) +
                              "'");
      }
    } else if (key == "journal_dir") {
      if (value.empty()) fail(line_number, "journal_dir must not be empty");
      spec.config.storage.journal_dir = std::string(value);
    } else if (key == "snapshot_interval") {
      const std::uint64_t interval = parse_number(value, line_number);
      if (interval > (1u << 30)) fail(line_number, "bad snapshot_interval");
      spec.config.storage.snapshot_interval =
          static_cast<std::uint32_t>(interval);
    } else if (key == "overload") {
      if (value == "on") {
        spec.config.overload.enabled = true;
      } else if (value == "off") {
        spec.config.overload.enabled = false;
      } else {
        fail(line_number, "overload must be on or off");
      }
    } else if (key == "admission_queue") {
      const std::uint64_t queue = parse_number(value, line_number);
      if (queue < 1 || queue > (1u << 20)) {
        fail(line_number, "bad admission_queue");
      }
      spec.config.overload.admission_queue =
          static_cast<std::size_t>(queue);
    } else if (key == "shed_deadline_us") {
      // 0 disables the queue deadline.
      const std::uint64_t deadline = parse_number(value, line_number);
      if (deadline > 3'600'000'000ULL) {
        fail(line_number, "bad shed_deadline_us");
      }
      spec.config.overload.shed_deadline_us = deadline;
    } else if (key == "degraded_batch_period_us") {
      const std::uint64_t period = parse_number(value, line_number);
      if (period < 1 || period > 60'000'000) {
        fail(line_number, "bad degraded_batch_period_us");
      }
      spec.config.overload.degraded_batch_period_us = period;
    } else if (key == "admission_rate") {
      // Admitted requests per lane per second; 0 = unlimited.
      const std::uint64_t rate = parse_number(value, line_number);
      if (rate > 10'000'000) fail(line_number, "bad admission_rate");
      spec.config.overload.admission_rate = static_cast<double>(rate);
    } else if (key == "admission_burst") {
      const std::uint64_t burst = parse_number(value, line_number);
      if (burst < 1 || burst > 10'000'000) {
        fail(line_number, "bad admission_burst");
      }
      spec.config.overload.admission_burst = static_cast<double>(burst);
    } else if (key == "client_schedule_cache_capacity") {
      const std::uint64_t capacity = parse_number(value, line_number);
      if (capacity < 1 || capacity > (1u << 20)) {
        fail(line_number, "bad client_schedule_cache_capacity");
      }
      spec.client_schedule_cache_capacity =
          static_cast<std::size_t>(capacity);
    } else {
      fail(line_number, "unknown key '" + std::string(key) + "'");
    }
  }

  // Cross-field sanity: a signing mode that needs RSA needs a signature
  // algorithm (same check the server constructor performs, surfaced early).
  if ((spec.config.signing == rekey::SigningMode::kPerMessage ||
       spec.config.signing == rekey::SigningMode::kBatch) &&
      !spec.config.suite.signs()) {
    throw ProtocolError("spec: signing mode requires signature != none");
  }
  // The disk-backed journals need somewhere to live.
  if ((spec.config.storage.kind == storage::Kind::kFile ||
       spec.config.storage.kind == storage::Kind::kMmap) &&
      spec.config.storage.journal_dir.empty()) {
    throw ProtocolError("spec: storage = " +
                        std::string(storage::kind_name(
                            spec.config.storage.kind)) +
                        " requires journal_dir");
  }
  return spec;
}

ServerSpec load_server_spec(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw Error("cannot read spec file: " + path);
  std::ostringstream contents;
  contents << file.rdbuf();
  return parse_server_spec(contents.str());
}

}  // namespace keygraphs::server

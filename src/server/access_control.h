// Group access control and the simulated authentication service.
//
// The paper assumes (a) the group server enforces an access control list
// provided by the group initiator, and (b) an authentication exchange —
// Kerberos-style, external to the measured system — that leaves the client
// and server sharing a session key used as the client's individual key.
// AccessControl implements (a) directly. AuthService simulates (b): both
// sides hold a pre-shared master secret (as if obtained from the
// authentication service) and derive the individual key and request tokens
// from it with HMAC-SHA256. The paper excludes authentication costs from
// every measurement (Section 5, footnote 9), so this substitution does not
// affect any reproduced number; it exists so the join/leave protocol can
// run end to end over a real socket.
#pragma once

#include <optional>
#include <unordered_set>

#include "common/bytes.h"
#include "crypto/hmac.h"
#include "keygraph/key.h"

namespace keygraphs::server {

/// Allow-list (or allow-all) group admission policy.
class AccessControl {
 public:
  /// Admits everyone. The experiment harness uses this.
  static AccessControl allow_all();

  /// Admits only listed users (the paper's initiator-provided ACL).
  static AccessControl allow_list(std::vector<UserId> users);

  [[nodiscard]] bool authorizes(UserId user) const;

  void grant(UserId user);
  void revoke(UserId user);

 private:
  explicit AccessControl(bool open) : open_(open) {}

  bool open_;
  std::unordered_set<UserId> allowed_;
};

/// Simulated authentication service (see file comment).
class AuthService {
 public:
  explicit AuthService(Bytes master_secret);

  /// The session key the authentication exchange would have produced,
  /// truncated to the group cipher's key size.
  [[nodiscard]] Bytes individual_key(UserId user, std::size_t key_size) const;

  /// Proof of identity accompanying a join request.
  [[nodiscard]] Bytes join_token(UserId user) const;
  [[nodiscard]] bool verify_join_token(UserId user, BytesView token) const;

  /// The paper's {leave-request}_{k_u}: a leave must be authenticated with
  /// the individual key so nobody can evict someone else.
  [[nodiscard]] Bytes leave_token(UserId user) const;
  [[nodiscard]] bool verify_leave_token(UserId user, BytesView token) const;

  /// Authenticates a keyset-resync request (a replay of the member's
  /// current keys must only ever go to the member itself).
  [[nodiscard]] Bytes resync_token(UserId user) const;
  [[nodiscard]] bool verify_resync_token(UserId user, BytesView token) const;

 private:
  [[nodiscard]] Bytes derive(const char* label, UserId user) const;

  crypto::Hmac hmac_;
};

}  // namespace keygraphs::server

#include "server/overload.h"

#include <algorithm>
#include <cmath>

#include "telemetry/metrics.h"

namespace keygraphs::server::overload {

namespace {

telemetry::Gauge& queue_depth_gauge() {
  static auto& gauge = telemetry::Registry::global().gauge(
      "server.overload.queue_depth",
      "Coalesced joins/leaves currently buffered across all lanes");
  return gauge;
}

telemetry::Gauge& breaker_gauge() {
  static auto& gauge = telemetry::Registry::global().gauge(
      "server.overload.breaker_open",
      "Lanes whose admission circuit breaker is currently open");
  return gauge;
}

}  // namespace

const char* health_name(HealthState state) noexcept {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kShedding:
      return "shedding";
  }
  return "?";
}

void publish_health(HealthState state) {
  // Written unconditionally (not gated on telemetry::enabled()): /healthz
  // reads this gauge, and health must answer even with telemetry off.
  static auto& gauge = telemetry::Registry::global().gauge(
      "server.health",
      "Overload health state: 0 healthy, 1 degraded, 2 shedding");
  gauge.set(static_cast<std::int64_t>(state));
}

AdmissionController::AdmissionController(const OverloadConfig& config,
                                         std::size_t lanes)
    : config_(config), lanes_(std::max<std::size_t>(lanes, 1)) {
  config_.admission_queue = std::max<std::size_t>(config_.admission_queue, 1);
  config_.admission_burst = std::max(config_.admission_burst, 1.0);
}

void AdmissionController::trip_breaker(LaneState& lane,
                                       std::uint64_t now_us) {
  if (lane.breaker_open_until_us > now_us) return;
  lane.breaker_open_until_us = now_us + config_.breaker_cooldown_us;
  ++breakers_open_;
  static auto& trips = telemetry::Registry::global().counter(
      "server.overload.breaker_trips",
      "Per-lane admission circuit breakers opened");
  if (telemetry::enabled()) {
    trips.add(1);
    breaker_gauge().set(static_cast<std::int64_t>(breakers_open_));
  }
}

Decision AdmissionController::shed(LaneState& lane,
                                   std::uint64_t retry_after_us,
                                   std::uint64_t now_us,
                                   bool count_consecutive) {
  ++sheds_window_;
  ++sheds_total_;
  static auto& sheds = telemetry::Registry::global().counter(
      "server.overload.shed",
      "Requests refused with kRetryLater by the admission controller");
  if (telemetry::enabled()) sheds.add(1);
  if (count_consecutive &&
      ++lane.consecutive_sheds >= config_.breaker_threshold) {
    trip_breaker(lane, now_us);
  }
  return Decision{Admission::kShed, std::max<std::uint64_t>(retry_after_us, 1)};
}

Decision AdmissionController::admit(std::size_t lane_index,
                                    std::uint64_t now_us,
                                    HealthState health) {
  std::lock_guard<std::mutex> lock(mutex_);
  LaneState& lane = lanes_.at(lane_index);

  // An open breaker sheds instantly with the remaining cooldown as the
  // hint; the first offer after the cooldown closes it.
  if (lane.breaker_open_until_us > now_us) {
    return shed(lane, lane.breaker_open_until_us - now_us, now_us,
                /*count_consecutive=*/false);
  }
  if (lane.breaker_open_until_us != 0) {
    lane.breaker_open_until_us = 0;
    lane.consecutive_sheds = 0;
    if (breakers_open_ > 0) --breakers_open_;
    if (telemetry::enabled()) {
      breaker_gauge().set(static_cast<std::int64_t>(breakers_open_));
    }
  }

  // Token-bucket admission (RecoveryLimiter semantics: refill only on a
  // forward clock, so a backwards step can never mint tokens).
  if (config_.admission_rate > 0) {
    if (!lane.bucket_primed) {
      lane.bucket_primed = true;
      lane.tokens = config_.admission_burst;
      lane.refilled_us = now_us;
    } else if (now_us > lane.refilled_us) {
      const double elapsed_s =
          static_cast<double>(now_us - lane.refilled_us) * 1e-6;
      lane.tokens = std::min(config_.admission_burst,
                             lane.tokens + elapsed_s * config_.admission_rate);
      lane.refilled_us = now_us;
    }
    if (lane.tokens < 1.0) {
      const double wait_s = (1.0 - lane.tokens) / config_.admission_rate;
      return shed(lane, static_cast<std::uint64_t>(std::ceil(wait_s * 1e6)),
                  now_us, /*count_consecutive=*/true);
    }
    lane.tokens -= 1.0;
  }

  if (health == HealthState::kHealthy) {
    lane.consecutive_sheds = 0;
    static auto& admitted = telemetry::Registry::global().counter(
        "server.overload.admitted",
        "Requests admitted to the immediate-rekey path");
    if (telemetry::enabled()) admitted.add(1);
    return Decision{Admission::kAdmit, 0};
  }

  // Degraded: buffer for the next batch tick, bounded per lane.
  if (lane.depth >= config_.admission_queue) {
    return shed(lane, config_.degraded_batch_period_us, now_us,
                /*count_consecutive=*/true);
  }
  lane.consecutive_sheds = 0;
  ++lane.depth;
  ++total_depth_;
  max_depth_ = std::max(max_depth_, lane.depth);
  static auto& coalesced = telemetry::Registry::global().counter(
      "server.overload.coalesced",
      "Requests buffered for the periodic degraded-mode batch");
  if (telemetry::enabled()) {
    coalesced.add(1);
    queue_depth_gauge().set(static_cast<std::int64_t>(total_depth_));
  }
  return Decision{Admission::kCoalesce, 0};
}

void AdmissionController::release(std::size_t lane_index, std::size_t n) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  LaneState& lane = lanes_.at(lane_index);
  const std::size_t returned = std::min(lane.depth, n);
  lane.depth -= returned;
  total_depth_ -= std::min(total_depth_, returned);
  if (telemetry::enabled()) {
    queue_depth_gauge().set(static_cast<std::int64_t>(total_depth_));
  }
}

void AdmissionController::note_seal(std::size_t lane_index,
                                    std::uint64_t seal_us,
                                    std::uint64_t now_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  LaneState& lane = lanes_.at(lane_index);
  lane.seal_ewma_us =
      lane.seal_ewma_us == 0 ? seal_us : (lane.seal_ewma_us * 7 + seal_us) / 8;
  // A lane sealing at twice the degrade threshold is the "one slow shard"
  // case: open its breaker so it sheds alone instead of stalling siblings.
  if (config_.degrade_seal_us > 0 &&
      lane.seal_ewma_us > 2 * config_.degrade_seal_us) {
    trip_breaker(lane, now_us);
  }
}

std::size_t AdmissionController::depth(std::size_t lane_index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lanes_.at(lane_index).depth;
}

std::size_t AdmissionController::max_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_depth_;
}

std::size_t AdmissionController::total_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_depth_;
}

std::size_t AdmissionController::take_sheds() {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t sheds = sheds_window_;
  sheds_window_ = 0;
  return sheds;
}

std::uint64_t AdmissionController::total_sheds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sheds_total_;
}

std::uint64_t AdmissionController::seal_ewma_us(std::size_t lane_index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lanes_.at(lane_index).seal_ewma_us;
}

bool AdmissionController::breaker_open(std::size_t lane_index,
                                       std::uint64_t now_us) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lanes_.at(lane_index).breaker_open_until_us > now_us;
}

HealthMonitor::HealthMonitor(const OverloadConfig& config) : config_(config) {
  config_.admission_queue = std::max<std::size_t>(config_.admission_queue, 1);
  publish_health(state_);
}

void HealthMonitor::note_queue_depth(std::size_t depth) {
  std::lock_guard<std::mutex> lock(mutex_);
  peak_depth_ = std::max(peak_depth_, depth);
}

void HealthMonitor::note_seal_us(std::uint64_t seal_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  seal_ewma_us_ =
      seal_ewma_us_ == 0 ? seal_us : (seal_ewma_us_ * 7 + seal_us) / 8;
}

void HealthMonitor::note_slo_lag(std::uint64_t lag_epochs) {
  std::lock_guard<std::mutex> lock(mutex_);
  slo_lag_ = std::max(slo_lag_, lag_epochs);
}

void HealthMonitor::note_sheds(std::size_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  sheds_ += count;
}

HealthState HealthMonitor::evaluate(std::uint64_t now_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  const double fraction =
      static_cast<double>(peak_depth_) /
      static_cast<double>(config_.admission_queue);
  int level = 0;
  if (fraction >= config_.shed_queue_fraction) {
    level = 2;
  } else if (fraction >= config_.degrade_queue_fraction ||
             (config_.degrade_seal_us > 0 &&
              seal_ewma_us_ > config_.degrade_seal_us) ||
             (config_.slo_lag_epochs > 0 &&
              slo_lag_ >= config_.slo_lag_epochs) ||
             sheds_ > 0) {
    // Shed pressure bootstraps degraded even at zero queue depth: the
    // queue only fills once coalescing starts, so a token-bucket burst is
    // the first overload signal the monitor ever sees.
    level = 1;
  }

  const int current = static_cast<int>(state_);
  if (level >= current) {
    // Pressure at or above the current state: stay (or escalate
    // immediately) and restart the recovery dwell.
    calm_anchor_set_ = true;
    calm_since_us_ = now_us;
    if (level > current) {
      state_ = static_cast<HealthState>(level);
      publish_health(state_);
      static auto& transitions = telemetry::Registry::global().counter(
          "server.overload.health_transitions",
          "HealthMonitor state changes (either direction)");
      if (telemetry::enabled()) transitions.add(1);
    }
  } else {
    if (!calm_anchor_set_) {
      calm_anchor_set_ = true;
      calm_since_us_ = now_us;
    } else if (now_us - calm_since_us_ >= config_.recover_dwell_us) {
      // One level at a time: shedding cools to degraded (still batching)
      // before anything goes back to immediate rekeying.
      state_ = static_cast<HealthState>(current - 1);
      calm_since_us_ = now_us;
      publish_health(state_);
      static auto& transitions = telemetry::Registry::global().counter(
          "server.overload.health_transitions",
          "HealthMonitor state changes (either direction)");
      if (telemetry::enabled()) transitions.add(1);
    }
  }

  peak_depth_ = 0;
  slo_lag_ = 0;
  sheds_ = 0;
  return state_;
}

HealthState HealthMonitor::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

}  // namespace keygraphs::server::overload

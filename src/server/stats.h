// Server-side measurement (paper Section 5).
//
// The paper reports, per join/leave request: server processing time, the
// number of rekey messages sent, their sizes (ave/min/max), encryption
// counts, and signature counts. ServerStats records one entry per operation
// and computes exactly the aggregates Tables 4-5 and Figures 10-11 need.
//
// The per-operation record now also carries a per-stage time breakdown
// (telemetry::StageBreakdown), and record() mirrors every operation into
// the global telemetry registry (server.ops.*, server.processing_ns, ...),
// so the live exporters see the same numbers the paper tables aggregate.
#pragma once

#include <cstdint>
#include <vector>

#include "rekey/message.h"
#include "telemetry/stage.h"

namespace keygraphs::server {

/// One join or leave operation's measurements.
struct OpRecord {
  rekey::RekeyKind kind = rekey::RekeyKind::kJoin;
  std::size_t key_encryptions = 0;
  std::size_t signatures = 0;
  std::size_t messages = 0;        // rekey messages sent (logical sends)
  std::size_t bytes = 0;           // total wire bytes across those messages
  std::size_t min_message = 0;     // smallest message, bytes
  std::size_t max_message = 0;     // largest message, bytes
  double processing_us = 0.0;      // server processing time, microseconds
  /// Self-time per stage, microseconds (auth is measured but excluded from
  /// processing_us, matching the paper's exclusion of authentication).
  telemetry::StageBreakdown stage_us{};
};

/// Aggregate over one experiment run.
struct Summary {
  std::size_t operations = 0;
  double avg_processing_ms = 0.0;
  double avg_messages = 0.0;
  std::size_t min_messages = 0;
  std::size_t max_messages = 0;
  double avg_message_bytes = 0.0;  // averaged over messages, like Table 5
  std::size_t min_message_bytes = 0;
  std::size_t max_message_bytes = 0;
  double avg_encryptions = 0.0;
  double avg_signatures = 0.0;
  double avg_total_bytes = 0.0;    // per operation
  /// Mean self-time per stage per operation, microseconds.
  telemetry::StageBreakdown avg_stage_us{};

  /// Sum of the stages inside the measured processing window (everything
  /// but auth) — comparable against avg_processing_ms * 1000.
  [[nodiscard]] double measured_stage_us() const noexcept;
};

class ServerStats {
 public:
  /// Stores the record and mirrors it into the telemetry registry.
  void record(const OpRecord& record);
  void reset() { records_.clear(); }

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] const std::vector<OpRecord>& records() const noexcept {
    return records_;
  }

  /// Aggregate over all operations of `kind`.
  [[nodiscard]] Summary summarize(rekey::RekeyKind kind) const;

  /// Aggregate over everything (the figures' "averaged over joins and
  /// leaves" series).
  [[nodiscard]] Summary summarize_all() const;

 private:
  std::vector<OpRecord> records_;
};

}  // namespace keygraphs::server

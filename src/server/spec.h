// Server specification files (paper Section 5: "The server is initialized
// from a specification file which determines the initial group size, the
// rekeying strategy, the key tree degree, the encryption algorithm, the
// message digest algorithm, the digital signature algorithm, etc.").
//
// Plain key = value lines, '#' comments. Recognized keys:
//   degree        = 4 | star
//   strategy      = user | key | group | hybrid
//   cipher        = des | 3des | aes128
//   digest        = none | md5 | sha1 | sha256
//   signature     = none | rsa512 | rsa768 | rsa1024 | rsa2048
//   signing       = none | digest | per-message | batch
//   group         = <u32 group id>
//   seed          = <u64; 0 = OS entropy>
//   seal_threads  = <1..256 threads for the seal (crypto) phase; 1 = serial>
//   auth_master   = <hex shared secret for the simulated auth service>
//   initial_size  = <users to admit at startup (user ids 1..n)>
//   port          = <udp port for the daemon; 0 = ephemeral>
//   acl           = all | <comma-separated user ids>
//   telemetry     = off | json | prom   (periodic metrics dump format)
//   telemetry_period = <seconds between dumps; 0 = only on SIGUSR1>
//   telemetry_http_port = <loopback HTTP scrape endpoint serving /metrics,
//                          /healthz and /trace; 0 = ephemeral port; absent
//                          = no endpoint>
//   trace_propagation = on | off   (stamp rekeys with trace contexts and
//                                   carry them on the wire; default off)
//   convergence_slo_us = <fleet convergence SLO in microseconds; samples
//                         above it count as fleet.slo_violations; 0 = off>
//   schedule_cache_capacity = <1..1048576 cached wrapping-key schedules in
//                              the seal executor (per shard lane when the
//                              server is sharded); default 8192>
//   client_schedule_cache_capacity = <1..1048576 cached unwrap schedules
//                                     handed to clients at admission;
//                                     default 64>
//   storage       = none | memory | file | mmap   (write-ahead journal
//                   backend; default none. file/mmap require journal_dir)
//   journal_dir   = <directory for the file/mmap journal + snapshots;
//                    created if absent>
//   snapshot_interval = <journal records between compacted snapshots;
//                        0 = never compact; default 1024>
//   overload      = on | off   (overload control: bounded admission, load
//                   shedding with kRetryLater, and degraded-mode batch
//                   coalescing; default off = byte-identical wire output)
//   admission_queue = <1..1048576 coalesced ops buffered per admission
//                      lane before requests are shed; default 1024>
//   shed_deadline_us = <buffered ops older than this at flush time are
//                       shed instead of batched; 0 = no deadline;
//                       default 250000>
//   degraded_batch_period_us = <degraded-mode flush tick; default 100000>
//   admission_rate  = <token-bucket admissions per lane per second;
//                      0 = unlimited; default 0>
//   admission_burst = <token-bucket burst capacity; default 64>
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "server/server.h"

namespace keygraphs::server {

/// How (and whether) the daemon dumps telemetry snapshots.
enum class TelemetryFormat {
  kOff,         ///< telemetry disabled entirely (zero-cost hot paths)
  kJson,        ///< JSON-lines snapshots on stderr
  kPrometheus,  ///< Prometheus text exposition on stderr
};

/// A parsed specification: the server configuration plus daemon-level
/// settings that are not part of ServerConfig proper.
struct ServerSpec {
  ServerConfig config;
  std::size_t initial_size = 0;
  std::uint16_t port = 0;
  /// nullopt = allow all; otherwise the explicit allow list.
  std::optional<std::vector<UserId>> acl;
  TelemetryFormat telemetry = TelemetryFormat::kOff;
  /// Seconds between periodic dumps; 0 disables the timer (SIGUSR1 still
  /// triggers a dump whenever telemetry != off).
  std::uint32_t telemetry_period_s = 10;
  /// Loopback HTTP scrape endpoint port; engaged when present (0 binds an
  /// ephemeral port, printed at startup), absent = no endpoint.
  std::optional<std::uint16_t> telemetry_http_port;
  /// Fleet convergence SLO in microseconds; 0 disables the check.
  std::uint64_t convergence_slo_us = 0;
  /// Unwrap ScheduleCache capacity the deployment hands to clients at
  /// admission (ClientConfig::schedule_cache_capacity). Not part of
  /// ServerConfig — the server never unwraps — but specified centrally so
  /// a fleet rollout sizes every member identically.
  std::size_t client_schedule_cache_capacity = 64;

  [[nodiscard]] AccessControl access_control() const {
    return acl.has_value() ? AccessControl::allow_list(*acl)
                           : AccessControl::allow_all();
  }
};

/// Parses specification text. Unknown keys and malformed values throw
/// ProtocolError naming the offending line.
ServerSpec parse_server_spec(std::string_view text);

/// Convenience: read and parse a file. Throws Error if unreadable.
ServerSpec load_server_spec(const std::string& path);

}  // namespace keygraphs::server

// Multi-group key management service (paper Section 7 / the authors'
// Keystone system): one service, many secure groups, one individual key
// per user shared across all of them.
//
// Each group runs its own GroupKeyServer over its own multicast domain
// (its own InProcNetwork here; per-group multicast addresses in a real
// deployment). The shared AuthService gives every user one individual key
// for the whole service — the merge point of the groups' key trees into a
// single key graph (see MultiGroupGraph for the structural view, and the
// multi_group example for the end-to-end demonstration).
#pragma once

#include <map>
#include <memory>

#include "common/error.h"
#include "server/server.h"
#include "transport/inproc.h"

namespace keygraphs::server {

class MultiGroupService {
 public:
  /// `base` supplies the suite/strategy/degree shared by every group; its
  /// group id and seed are overridden per group.
  explicit MultiGroupService(ServerConfig base) : base_(std::move(base)) {}

  /// Creates a new secure group with its own server and multicast domain.
  GroupId create_group() {
    const GroupId id = next_group_++;
    auto entry = std::make_unique<Entry>();
    ServerConfig config = base_;
    config.group = id;
    config.rng_seed = base_.rng_seed == 0
                          ? 0
                          : base_.rng_seed * 1000003u + id;
    entry->server = std::make_unique<GroupKeyServer>(config, entry->network);
    groups_.emplace(id, std::move(entry));
    return id;
  }

  [[nodiscard]] GroupKeyServer& server(GroupId group) {
    return *entry(group).server;
  }
  [[nodiscard]] transport::InProcNetwork& network(GroupId group) {
    return entry(group).network;
  }

  /// The service-wide authentication view: every group's server derives
  /// the same individual key for a user because they share auth_master.
  [[nodiscard]] Bytes individual_key(UserId user) const {
    return AuthService(base_.auth_master)
        .individual_key(user, base_.suite.key_size());
  }

  /// Groups the user currently belongs to.
  [[nodiscard]] std::vector<GroupId> groups_of(UserId user) const {
    std::vector<GroupId> out;
    for (const auto& [id, entry] : groups_) {
      if (entry->server->tree_view()->has_user(user)) out.push_back(id);
    }
    return out;
  }

  [[nodiscard]] std::size_t group_count() const { return groups_.size(); }

 private:
  struct Entry {
    transport::InProcNetwork network;
    std::unique_ptr<GroupKeyServer> server;
  };

  Entry& entry(GroupId group) {
    auto it = groups_.find(group);
    if (it == groups_.end()) {
      throw ProtocolError("MultiGroupService: no such group");
    }
    return *it->second;
  }

  ServerConfig base_;
  std::map<GroupId, std::unique_ptr<Entry>> groups_;
  GroupId next_group_ = 1;
};

}  // namespace keygraphs::server

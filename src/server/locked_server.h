// Thread-safe facade over GroupKeyServer.
//
// The core server is single-threaded by design (the paper's prototype
// serves one UDP socket). Deployments that accept requests from several
// threads (e.g. one per TCP connection) wrap it in this facade: one mutex
// serializes all membership operations and state reads. Coarse locking is
// deliberate — a join/leave mutates the whole tree path, and the measured
// cost of an operation (Figure 10: well under a millisecond unsigned) makes
// finer-grained locking complexity without a payoff.
#pragma once

#include <mutex>

#include "server/server.h"

namespace keygraphs::server {

class LockedGroupKeyServer {
 public:
  LockedGroupKeyServer(ServerConfig config,
                       transport::ServerTransport& transport,
                       AccessControl acl = AccessControl::allow_all())
      : server_(std::move(config), transport, std::move(acl)) {}

  JoinResult join(UserId user) {
    const std::lock_guard lock(mutex_);
    return server_.join(user);
  }

  JoinResult join_with_token(UserId user, BytesView token) {
    const std::lock_guard lock(mutex_);
    return server_.join_with_token(user, token);
  }

  void leave(UserId user) {
    const std::lock_guard lock(mutex_);
    server_.leave(user);
  }

  bool leave_with_token(UserId user, BytesView token) {
    const std::lock_guard lock(mutex_);
    return server_.leave_with_token(user, token);
  }

  std::vector<UserId> batch(const std::vector<UserId>& join_users,
                            const std::vector<UserId>& leave_users) {
    const std::lock_guard lock(mutex_);
    return server_.batch(join_users, leave_users);
  }

  [[nodiscard]] Bytes snapshot() const {
    const std::lock_guard lock(mutex_);
    return server_.snapshot();
  }

  void restore(BytesView snapshot) {
    const std::lock_guard lock(mutex_);
    server_.restore(snapshot);
  }

  [[nodiscard]] std::size_t member_count() const {
    const std::lock_guard lock(mutex_);
    return server_.tree().user_count();
  }

  [[nodiscard]] bool has_member(UserId user) const {
    const std::lock_guard lock(mutex_);
    return server_.tree().has_user(user);
  }

  [[nodiscard]] SymmetricKey group_key() const {
    const std::lock_guard lock(mutex_);
    return server_.tree().group_key();
  }

  [[nodiscard]] std::uint64_t epoch() const {
    const std::lock_guard lock(mutex_);
    return server_.epoch();
  }

  /// Runs `fn(const GroupKeyServer&)` under the lock for compound reads.
  template <typename Fn>
  auto with_server(Fn&& fn) const {
    const std::lock_guard lock(mutex_);
    return fn(static_cast<const GroupKeyServer&>(server_));
  }

  /// The auth service is immutable after construction: safe unlocked.
  [[nodiscard]] const AuthService& auth() const { return server_.auth(); }

 private:
  mutable std::mutex mutex_;
  GroupKeyServer server_;
};

}  // namespace keygraphs::server

// Thread-safe facade over GroupKeyServer — crypto outside the lock.
//
// The core server is single-threaded by design (the paper's prototype
// serves one UDP socket). Deployments that accept requests from several
// threads (e.g. one per TCP connection) wrap it in this facade. The
// pipeline split lets the facade hold its mutex only for the cheap phases:
//
//   plan      under mutex_ — tree mutation, symbolic planning, IV draws.
//   seal      UNLOCKED      — all encryptions/digests/signatures; this is
//                             where concurrent operations overlap, and
//                             each seal may itself fan out across
//                             seal_threads workers.
//   dispatch  under dispatch_mutex_ — send + stats, sequenced by ticket so
//                             messages leave in epoch order even when a
//                             later op finishes sealing first. Subgroup
//                             recipients resolve against the plan-time
//                             TreeView, so dispatch never touches the tree
//                             and never contends with planners.
//
// Reads are lock-free: the tree publishes an immutable TreeView per epoch,
// so member_count()/has_member()/group_key()/epoch()/snapshot()/
// resolve_subgroup() and the whole resync path acquire the current view
// and run to completion while a writer holds mutex_ mid-plan.
//
// Tickets are issued at plan time (under mutex_ for mutations; atomically,
// lock-free for resyncs); the sequencer (its own mutex_ + condvar)
// releases dispatchers in ticket order. Lock order is sequence_mutex_ ->
// dispatch_mutex_; with_server() takes mutex_ + dispatch_mutex_ together
// via scoped_lock; no path acquires dispatch_mutex_ before mutex_ — so
// there is no cycle. An op whose seal throws still retires its ticket,
// keeping the sequence live.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "server/server.h"

namespace keygraphs::server {

class LockedGroupKeyServer {
 public:
  LockedGroupKeyServer(ServerConfig config,
                       transport::ServerTransport& transport,
                       AccessControl acl = AccessControl::allow_all())
      : server_(std::move(config), transport, std::move(acl)) {}

  JoinResult join(UserId user) {
    GroupKeyServer::PendingRekey pending;
    std::uint64_t ticket = 0;
    {
      const std::lock_guard lock(mutex_);
      const JoinResult result = server_.plan_join(user, pending);
      if (result != JoinResult::kGranted) return result;
      ticket = tickets_issued_++;
    }
    seal_and_dispatch(std::move(pending), ticket);
    return JoinResult::kGranted;
  }

  JoinResult join_with_token(UserId user, BytesView token) {
    GroupKeyServer::PendingRekey pending;
    std::uint64_t ticket = 0;
    {
      const std::lock_guard lock(mutex_);
      const JoinResult result =
          server_.plan_join_with_token(user, token, pending);
      if (result != JoinResult::kGranted) return result;
      ticket = tickets_issued_++;
    }
    seal_and_dispatch(std::move(pending), ticket);
    return JoinResult::kGranted;
  }

  void leave(UserId user) {
    GroupKeyServer::PendingRekey pending;
    std::uint64_t ticket = 0;
    {
      const std::lock_guard lock(mutex_);
      server_.plan_leave(user, pending);  // throws before a ticket exists
      ticket = tickets_issued_++;
    }
    seal_and_dispatch(std::move(pending), ticket);
  }

  bool leave_with_token(UserId user, BytesView token) {
    GroupKeyServer::PendingRekey pending;
    std::uint64_t ticket = 0;
    {
      const std::lock_guard lock(mutex_);
      if (!server_.plan_leave_with_token(user, token, pending)) return false;
      ticket = tickets_issued_++;
    }
    seal_and_dispatch(std::move(pending), ticket);
    return true;
  }

  std::vector<UserId> batch(const std::vector<UserId>& join_users,
                            const std::vector<UserId>& leave_users) {
    GroupKeyServer::PendingRekey pending;
    std::vector<UserId> admitted;
    std::uint64_t ticket = 0;
    {
      const std::lock_guard lock(mutex_);
      admitted = server_.plan_batch(join_users, leave_users, pending);
      ticket = tickets_issued_++;
    }
    seal_and_dispatch(std::move(pending), ticket);
    return admitted;
  }

  /// Lock-free: plans on an acquired TreeView, so it completes even while
  /// a writer holds the group mutex mid-plan.
  void resync(UserId user) {
    GroupKeyServer::PendingRekey pending;
    server_.plan_resync(user, pending);  // throws before a ticket exists
    seal_and_dispatch(std::move(pending), tickets_issued_++);
  }

  /// Lock-free (see resync()).
  bool resync_with_token(UserId user, BytesView token) {
    GroupKeyServer::PendingRekey pending;
    if (!server_.plan_resync_with_token(user, token, pending)) return false;
    seal_and_dispatch(std::move(pending), tickets_issued_++);
    return true;
  }

  // --- Overload control ------------------------------------------------
  // The coalesce buffers are plan-phase state, so the gate runs under the
  // plan mutex; the flush itself goes through the sequenced pipeline
  // (never the wrapped batch(), which would bypass ticket ordering).

  GateResult offer_join(UserId user, BytesView token) {
    const std::lock_guard lock(mutex_);
    return server_.offer_join(user, token);
  }

  GateResult offer_leave(UserId user, BytesView token) {
    const std::lock_guard lock(mutex_);
    return server_.offer_leave(user, token);
  }

  /// Degraded-mode tick: evaluates health and, when the batch tick is
  /// due, plans one coalesced batch under mutex_ and seals/dispatches it
  /// with a ticket like every other mutation.
  OverloadTick poll_overload() {
    OverloadTick tick;
    if (!server_.config().overload.enabled) return tick;
    GroupKeyServer::PendingRekey pending;
    std::uint64_t ticket = 0;
    {
      const std::lock_guard lock(mutex_);
      server_.evaluate_overload();
      DegradedFlush flush = server_.take_degraded_flush();
      tick.shed = std::move(flush.shed);
      if (!flush.has_work()) return tick;
      tick.joined = server_.plan_batch(flush.joins, flush.leaves, pending);
      ticket = tickets_issued_++;
    }
    seal_and_dispatch(std::move(pending), ticket);
    tick.flushed = true;
    return tick;
  }

  [[nodiscard]] overload::HealthState health() const {
    return server_.health();
  }

  /// Authenticated NACK. The rate limiter and retransmit window are
  /// dispatch-phase state, so the replay half runs under dispatch_mutex_;
  /// an out-of-window gap falls back through the lock-free resync path
  /// (seal outside every lock, sequenced dispatch).
  std::optional<NackOutcome> nack_with_token(UserId user, BytesView token,
                                             std::uint64_t have_epoch) {
    if (!server_.auth().verify_resync_token(user, token)) return std::nullopt;
    if (!server_.tree_view()->has_user(user)) return std::nullopt;
    {
      const std::lock_guard lock(dispatch_mutex_);
      if (const auto outcome = server_.try_retransmit(user, have_epoch)) {
        return outcome;
      }
    }
    GroupKeyServer::PendingRekey pending;
    server_.plan_resync(user, pending);
    seal_and_dispatch(std::move(pending), tickets_issued_++);
    return NackOutcome::kResynced;
  }

  /// Lock-free: serializes one internally consistent epoch view.
  [[nodiscard]] Bytes snapshot() const { return server_.snapshot(); }

  /// Replaces group state wholesale. Takes both locks: restore() resets
  /// the retransmit window, which is dispatch-phase state — a concurrent
  /// NACK must never read the ring mid-swap.
  void restore(BytesView snapshot) {
    const std::scoped_lock lock(mutex_, dispatch_mutex_);
    server_.restore(snapshot);
  }

  /// Journal recovery (see GroupKeyServer::recover_from_storage). Call
  /// before the facade is shared across threads — replay drives the whole
  /// plan/seal/dispatch pipeline of the wrapped server directly.
  void recover_from_storage(const storage::RecoveryOptions& options = {}) {
    const std::scoped_lock lock(mutex_, dispatch_mutex_);
    server_.recover_from_storage(options);
  }

  [[nodiscard]] std::size_t member_count() const {
    return server_.tree_view()->user_count();
  }

  [[nodiscard]] bool has_member(UserId user) const {
    return server_.tree_view()->has_user(user);
  }

  [[nodiscard]] SymmetricKey group_key() const {
    return server_.tree_view()->group_key();
  }

  [[nodiscard]] std::uint64_t epoch() const {
    return server_.tree_view()->epoch();
  }

  /// Lock-free subgroup resolution on the current epoch view (the unicast
  /// fan-out Resolver).
  [[nodiscard]] std::vector<UserId> resolve_subgroup(
      KeyId include, std::optional<KeyId> exclude) const {
    return server_.resolve_subgroup(include, exclude);
  }

  /// Current epoch view of the tree, for compound lock-free reads.
  [[nodiscard]] TreeViewPtr tree_view() const { return server_.tree_view(); }

  /// Runs `fn(const GroupKeyServer&)` with both the plan and dispatch
  /// locks held, for compound reads that must see quiescent state (e.g.
  /// stats). Waits for no in-flight seals: the view is the planned state,
  /// which snapshot()/stats() readers already expect.
  template <typename Fn>
  auto with_server(Fn&& fn) const {
    const std::scoped_lock lock(mutex_, dispatch_mutex_);
    return fn(static_cast<const GroupKeyServer&>(server_));
  }

  /// The auth service is immutable after construction: safe unlocked.
  [[nodiscard]] const AuthService& auth() const { return server_.auth(); }

 private:
  void seal_and_dispatch(GroupKeyServer::PendingRekey&& pending,
                         std::uint64_t ticket) {
    try {
      server_.seal(pending);  // unlocked: overlaps with other ops' crypto
    } catch (...) {
      retire(ticket);
      throw;
    }
    std::unique_lock order(sequence_mutex_);
    sequence_cv_.wait(order, [&] { return next_dispatch_ == ticket; });
    try {
      const std::lock_guard lock(dispatch_mutex_);
      server_.dispatch(std::move(pending));
    } catch (...) {
      ++next_dispatch_;
      sequence_cv_.notify_all();
      throw;
    }
    ++next_dispatch_;
    sequence_cv_.notify_all();
  }

  /// Advances the sequence past `ticket` without dispatching (seal threw).
  void retire(std::uint64_t ticket) {
    std::unique_lock order(sequence_mutex_);
    sequence_cv_.wait(order, [&] { return next_dispatch_ == ticket; });
    ++next_dispatch_;
    sequence_cv_.notify_all();
  }

  mutable std::mutex mutex_;  // guards group state mutation (plan, restore)
  /// Guards transport delivery + stats (the dispatch phase). Separate from
  /// mutex_ so a resync can dispatch while a writer is planning.
  mutable std::mutex dispatch_mutex_;
  /// Atomic so lock-free resyncs can take tickets while planners hold
  /// mutex_; mutation tickets are still taken under mutex_, preserving
  /// epoch order among them.
  std::atomic<std::uint64_t> tickets_issued_ = 0;
  std::mutex sequence_mutex_;
  std::condition_variable sequence_cv_;
  std::uint64_t next_dispatch_ = 0;  // guarded by sequence_mutex_
  GroupKeyServer server_;
};

}  // namespace keygraphs::server

#include "server/sharded_server.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>
#include <utility>

#include "common/error.h"
#include "crypto/random.h"
#include "crypto/sha256.h"
#include "rekey/batch.h"
#include "telemetry/convergence.h"

namespace keygraphs::server {

namespace {

/// Reserved shard_seed lane for the root layer's rng, far outside any
/// realistic shard index.
constexpr std::uint64_t kRootRngLane = 999983;

/// The journal's commit digest: sha256 over the concatenated sealed wire
/// bytes, in message order (same formula as the unsharded server's).
Bytes sealed_digest(const std::vector<rekey::SealedRekey>& sealed) {
  crypto::Sha256 digest;
  for (const rekey::SealedRekey& message : sealed) {
    digest.update(message.wire);
  }
  return digest.finish();
}

/// Saves and force-sets a flag for one scope (exception-safe), restoring
/// the caller's value on exit.
class ScopedFlag {
 public:
  explicit ScopedFlag(bool& flag) : flag_(flag), saved_(flag) { flag_ = true; }
  ~ScopedFlag() { flag_ = saved_; }
  ScopedFlag(const ScopedFlag&) = delete;
  ScopedFlag& operator=(const ScopedFlag&) = delete;

 private:
  bool& flag_;
  bool saved_;
};

telemetry::Gauge* lane_gauge(std::size_t shard, const char* what) {
  return &telemetry::Registry::global().gauge(
      "shard." + std::to_string(shard) + "." + what);
}

struct RetransmitMetrics {
  telemetry::Counter& nacks;
  telemetry::Counter& served;
  telemetry::Counter& datagrams;
  telemetry::Counter& out_of_window;
  telemetry::Counter& rate_limited;
  telemetry::Counter& resync_fallbacks;

  static RetransmitMetrics& get() {
    auto& registry = telemetry::Registry::global();
    static RetransmitMetrics* metrics = new RetransmitMetrics{
        registry.counter("rekey.retransmit.nacks"),
        registry.counter("rekey.retransmit.served"),
        registry.counter("rekey.retransmit.datagrams"),
        registry.counter("rekey.retransmit.out_of_window"),
        registry.counter("rekey.retransmit.rate_limited"),
        registry.counter("rekey.retransmit.resync_fallbacks"),
    };
    return *metrics;
  }
};

}  // namespace

ShardedGroupKeyServer::ShardedGroupKeyServer(
    ShardedServerConfig config, transport::ServerTransport& transport,
    AccessControl acl)
    : config_(std::move(config)),
      transport_(transport),
      acl_(std::move(acl)),
      auth_(config_.base.auth_master),
      root_rng_(shard_seed(config_.base.rng_seed, kRootRngLane) == 0
                    ? crypto::SecureRandom()
                    : crypto::SecureRandom(
                          shard_seed(config_.base.rng_seed, kRootRngLane))),
      retransmit_(config_.base.retransmit_window),
      limiter_(config_.base.recovery_rate, config_.base.recovery_burst) {
  if (config_.shards == 0) config_.shards = 1;
  const ServerConfig& base = config_.base;
  tree_ = std::make_unique<ShardedKeyTree>(base.tree_degree,
                                           base.suite.key_size(),
                                           config_.shards, base.rng_seed);
  strategy_ = rekey::make_strategy(base.strategy);

  const std::size_t shards = config_.shards;
  lanes_.reserve(shards);
  shard_roots_.reserve(shards);
  shard_views_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    auto lane = std::make_unique<Lane>();
    lane->executor = std::make_unique<rekey::RekeyExecutor>(
        base.suite.cipher, base.seal_threads, base.schedule_cache_capacity);
    lane->users = lane_gauge(i, "users");
    lane->epoch = lane_gauge(i, "epoch");
    lane->seal_us = lane_gauge(i, "seal_us");
    lanes_.push_back(std::move(lane));
    const TreeViewPtr view = tree_->shard(i).view();
    shard_roots_.push_back(view->group_key());
    shard_views_.push_back(view);
  }
  auto& registry = telemetry::Registry::global();
  fleet_users_ = &registry.gauge("shard.users");
  fleet_epoch_ = &registry.gauge("shard.epoch");
  fleet_seal_us_ = &registry.gauge("shard.seal_us");
  registry.gauge("server.shards").set(static_cast<std::int64_t>(shards));

  // At K > 1 the root layer owns the group key G from birth (version 0,
  // refreshed on every epoch). Drawn before the signer so the root rng
  // stream layout is fixed.
  if (shards > 1) {
    group_secret_ = root_rng_.bytes(base.suite.key_size());
    group_version_ = 0;
  }

  if (base.signing == rekey::SigningMode::kPerMessage ||
      base.signing == rekey::SigningMode::kBatch) {
    if (!base.suite.signs()) {
      throw ProtocolError("server: signing mode set but suite has no RSA");
    }
    // K = 1 draws the signer from the lane-0 rng *after* the tree root,
    // matching GroupKeyServer's construction order exactly (same stream,
    // same key, byte-identical signatures).
    crypto::SecureRandom& signer_rng =
        shards == 1 ? tree_->rng(0) : root_rng_;
    signer_ = std::make_unique<crypto::RsaPrivateKey>(
        crypto::RsaPrivateKey::generate(
            signer_rng, crypto::signature_modulus_bits(base.suite.signature)));
  }
  sealer_ = std::make_unique<rekey::RekeySealer>(
      base.signing, base.suite.signing_digest(), signer_.get());

  // One admission lane per shard, so a flash crowd (or slow seal) in one
  // shard sheds there while its siblings keep admitting.
  gate_ = std::make_unique<overload::AdmissionController>(base.overload,
                                                          shards);
  health_ = std::make_unique<overload::HealthMonitor>(base.overload);
  buffers_.resize(shards);

  // One journal lane per shard: lanes append independently under their
  // dispatch tickets, and the global commit sequence (assigned inside
  // DurableStore::append) stitches them back into total order at recovery.
  if (base.storage.enabled()) {
    durable_ = std::make_unique<storage::DurableStore>(
        storage::make_backend(base.storage, shards),
        base.storage.snapshot_interval);
  }
}

ShardedGroupKeyServer::~ShardedGroupKeyServer() = default;

std::uint64_t ShardedGroupKeyServer::now_us() const {
  if (replaying_) return pinned_clock_us_;  // journal replay pins the clock
  if (config_.base.clock_us) return config_.base.clock_us();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

SymmetricKey ShardedGroupKeyServer::shared_key_locked() const {
  return SymmetricKey{kSharedGroupKeyId, group_version_, group_secret_};
}

// --- Planning -----------------------------------------------------------

JoinResult ShardedGroupKeyServer::plan_join_locked(UserId user,
                                                   std::size_t shard,
                                                   Pending& pending) {
  if (!acl_.authorizes(user)) return JoinResult::kDenied;
  KeyTree& tree = tree_->shard(shard);
  if (tree.has_user(user)) return JoinResult::kDuplicate;
  Bytes individual_key =
      auth_.individual_key(user, config_.base.suite.key_size());

  // Journal tape: every lane-rng byte the mutation + plan draw below.
  // (Root-layer draws are captured separately inside stitch.)
  std::optional<crypto::RngCapture> capture;
  if (durable_ != nullptr && !replaying_) capture.emplace(tree_->rng(shard));
  pending.started = std::chrono::steady_clock::now();
  const JoinRecord record = tree.join(user, std::move(individual_key));
  const TreeViewPtr view = tree.view();
  rekey::RekeyPlanner planner(config_.base.suite.cipher, tree_->rng(shard),
                              view);
  std::vector<rekey::PlannedRekey> messages =
      strategy_->plan_join(record, planner);
  stitch(pending, shard, view, planner, std::move(messages),
         rekey::RekeyKind::kJoin, rekey::RekeyKind::kJoin,
         record.removed_nodes);
  if (capture) {
    pending.commit = std::make_unique<storage::JournalRecord>();
    pending.commit->kind = storage::OpKind::kJoin;
    pending.commit->epoch = pending.epoch;
    pending.commit->shard = static_cast<std::uint32_t>(shard);
    pending.commit->timestamp_us = pending.timestamp_us;
    pending.commit->joins.push_back(user);
    pending.commit->rng_tape = capture->take();
    pending.commit->root_tape = std::move(pending.root_tape);
  }
  return JoinResult::kGranted;
}

void ShardedGroupKeyServer::plan_leave_locked(UserId user, std::size_t shard,
                                              Pending& pending) {
  KeyTree& tree = tree_->shard(shard);
  std::optional<crypto::RngCapture> capture;
  if (durable_ != nullptr && !replaying_) capture.emplace(tree_->rng(shard));
  pending.started = std::chrono::steady_clock::now();
  const LeaveRecord record = tree.leave(user);  // throws for non-members
  const TreeViewPtr view = tree.view();
  rekey::RekeyPlanner planner(config_.base.suite.cipher, tree_->rng(shard),
                              view);
  std::vector<rekey::PlannedRekey> messages =
      strategy_->plan_leave(record, planner);
  stitch(pending, shard, view, planner, std::move(messages),
         rekey::RekeyKind::kLeave, rekey::RekeyKind::kLeave,
         record.removed_nodes);
  if (capture) {
    pending.commit = std::make_unique<storage::JournalRecord>();
    pending.commit->kind = storage::OpKind::kLeave;
    pending.commit->epoch = pending.epoch;
    pending.commit->shard = static_cast<std::uint32_t>(shard);
    pending.commit->timestamp_us = pending.timestamp_us;
    pending.commit->leaves.push_back(user);
    pending.commit->rng_tape = capture->take();
    pending.commit->root_tape = std::move(pending.root_tape);
  }
  if (telemetry::enabled() && !replaying_) {
    telemetry::ConvergenceMonitor::global().forget_user(user);
  }
}

std::vector<UserId> ShardedGroupKeyServer::plan_batch_locked(
    std::size_t shard, const std::vector<UserId>& join_users,
    const std::vector<UserId>& leave_users, Pending& pending) {
  KeyTree& tree = tree_->shard(shard);
  std::vector<std::pair<UserId, Bytes>> joins;
  std::vector<UserId> admitted;
  for (UserId user : join_users) {
    if (!acl_.authorizes(user) || tree.has_user(user)) continue;
    joins.emplace_back(user,
                       auth_.individual_key(user, config_.base.suite.key_size()));
    admitted.push_back(user);
  }
  // Entirely filtered out and nothing to remove: no mutation, no epoch.
  if (joins.empty() && leave_users.empty()) return admitted;

  std::optional<crypto::RngCapture> capture;
  if (durable_ != nullptr && !replaying_) capture.emplace(tree_->rng(shard));
  pending.started = std::chrono::steady_clock::now();
  const BatchRecord record = tree.batch_update(joins, leave_users);
  const TreeViewPtr view = tree.view();
  rekey::RekeyPlanner planner(config_.base.suite.cipher, tree_->rng(shard),
                              view);
  std::vector<rekey::PlannedRekey> messages = rekey::plan_batch(record, planner);
  stitch(pending, shard, view, planner, std::move(messages),
         rekey::RekeyKind::kBatch, rekey::RekeyKind::kBatch,
         record.removed_nodes);
  if (capture) {
    pending.commit = std::make_unique<storage::JournalRecord>();
    pending.commit->kind = storage::OpKind::kBatch;
    pending.commit->epoch = pending.epoch;
    pending.commit->shard = static_cast<std::uint32_t>(shard);
    pending.commit->timestamp_us = pending.timestamp_us;
    pending.commit->joins = admitted;  // post-ACL, pre-mutation order
    pending.commit->leaves = leave_users;
    pending.commit->rng_tape = capture->take();
    pending.commit->root_tape = std::move(pending.root_tape);
  }
  if (telemetry::enabled() && !replaying_) {
    for (const UserId leaver : leave_users) {
      telemetry::ConvergenceMonitor::global().forget_user(leaver);
    }
  }
  return admitted;
}

void ShardedGroupKeyServer::stitch(Pending& pending, std::size_t shard,
                                   TreeViewPtr view,
                                   rekey::RekeyPlanner& planner,
                                   std::vector<rekey::PlannedRekey> messages,
                                   rekey::RekeyKind op_kind,
                                   rekey::RekeyKind wire_kind,
                                   const std::vector<KeyId>& obsolete) {
  const std::size_t shards = shard_count();
  const std::size_t block = crypto::cipher_block_size(config_.base.suite.cipher);

  // Take the plan before the root critical section: the shared-key append
  // below needs to know each message's wrapping shape, and none of this
  // inspection needs the root lock.
  pending.plan = planner.take(std::move(messages));
  const std::size_t lane_messages = pending.plan.messages.size();
  // Classify lane messages by how their recipients decrypt:
  //   member messages (wrapped under tree keys) learn the new shard root
  //   from their own blobs, so G rides along wrapped under that root;
  //   individually-keyed messages (welcomes / keyset replays, every blob
  //   under one individual key) must stay all-individual so the client's
  //   keyset-replay jump-sync detection keeps working — G is wrapped under
  //   the same individual key instead.
  std::vector<std::size_t> member_messages;
  std::vector<std::size_t> welcome_messages;
  if (shards > 1) {
    for (std::size_t i = 0; i < lane_messages; ++i) {
      const auto& ops = pending.plan.messages[i].ops;
      if (ops.empty()) continue;
      bool individual = true;
      for (const std::uint32_t op : ops) {
        individual &= (pending.plan.ops[op].wrap.id >> 63) != 0;
      }
      (individual ? welcome_messages : member_messages).push_back(i);
    }
  }

  struct Broadcast {
    SymmetricKey root;
    TreeViewPtr view;
    Bytes iv;
  };
  std::vector<Broadcast> broadcasts;
  SymmetricKey shared;
  Bytes lane_iv;
  std::vector<Bytes> welcome_ivs;
  std::size_t fleet = 0;
  {
    // The root critical section: allocate the epoch, record this shard's
    // new root, refresh G and capture the *other* shards' roots exactly as
    // of this epoch. Because capture happens under the same lock as
    // allocation, an epoch never wraps G under a shard root newer than the
    // one its clients hold at that point of the stitched stream.
    const std::lock_guard<std::mutex> lock(root_mutex_);
    // Root-rng draws interleave across shards in epoch order, which no
    // single lane's replay could reproduce — so each record carries its
    // own slice of the root stream (G refresh + stitch IVs) as a second
    // tape, recorded under the same lock that orders the draws.
    std::optional<crypto::RngCapture> root_capture;
    if (durable_ != nullptr && !replaying_) root_capture.emplace(root_rng_);
    pending.epoch = ++epoch_;
    shard_roots_[shard] = view->group_key();
    shard_views_[shard] = view;
    for (const TreeViewPtr& v : shard_views_) fleet += v->user_count();
    if (shards > 1) {
      group_secret_ = root_rng_.bytes(config_.base.suite.key_size());
      group_version_ = static_cast<KeyVersion>(pending.epoch);
      shared = shared_key_locked();
      if (!member_messages.empty()) lane_iv = root_rng_.bytes(block);
      welcome_ivs.reserve(welcome_messages.size());
      for (std::size_t i = 0; i < welcome_messages.size(); ++i) {
        welcome_ivs.push_back(root_rng_.bytes(block));
      }
      for (std::size_t j = 0; j < shards; ++j) {
        if (j == shard || shard_views_[j]->user_count() == 0) continue;
        broadcasts.push_back(
            Broadcast{shard_roots_[j], shard_views_[j], root_rng_.bytes(block)});
      }
    }
    if (root_capture) pending.root_tape = root_capture->take();
  }

  try {
    pending.shard = shard;
    pending.fleet = fleet;
    pending.lane_view = view;
    if (config_.base.trace_propagation && telemetry::enabled()) {
      pending.trace_id = telemetry::next_trace_id();
    }
    const std::uint64_t timestamp = now_us();
    pending.timestamp_us = timestamp;
    for (rekey::PlannedRekey& message : pending.plan.messages) {
      message.header.group = config_.base.group;
      message.header.epoch = pending.epoch;
      message.header.timestamp_us = timestamp;
      message.header.kind = wire_kind;
      message.header.obsolete = obsolete;
    }
    pending.views.assign(lane_messages, view);

    if (shards > 1) {
      pending.plan.keys.add(shared);
      // Ride-along blob on every member message: G_E wrapped under this
      // shard's new root. Clients unwrap it in the same fixpoint pass that
      // gives them the new root — no extra message for the mutated shard.
      if (!member_messages.empty()) {
        const auto op_index =
            static_cast<std::uint32_t>(pending.plan.ops.size());
        pending.plan.ops.push_back(rekey::WrapOp{
            view->group_key().ref(), {shared.ref()}, std::move(lane_iv)});
        pending.plan.key_encryptions += 1;
        for (const std::size_t i : member_messages) {
          pending.plan.messages[i].ops.push_back(op_index);
        }
      }
      // Welcomes stay wrapped entirely under the recipient's individual
      // key (one G wrap per welcome), preserving keyset-replay semantics.
      for (std::size_t w = 0; w < welcome_messages.size(); ++w) {
        const std::size_t i = welcome_messages[w];
        const KeyRef individual =
            pending.plan.ops[pending.plan.messages[i].ops.front()].wrap;
        const auto op_index =
            static_cast<std::uint32_t>(pending.plan.ops.size());
        pending.plan.ops.push_back(rekey::WrapOp{
            individual, {shared.ref()}, std::move(welcome_ivs[w])});
        pending.plan.key_encryptions += 1;
        pending.plan.messages[i].ops.push_back(op_index);
      }
      // One broadcast per other populated shard: G_E under that shard's
      // current root, multicast to its root's subgroup.
      for (Broadcast& b : broadcasts) {
        pending.plan.keys.add(b.root);
        const auto op_index =
            static_cast<std::uint32_t>(pending.plan.ops.size());
        pending.plan.ops.push_back(
            rekey::WrapOp{b.root.ref(), {shared.ref()}, std::move(b.iv)});
        pending.plan.key_encryptions += 1;
        rekey::PlannedRekey update;
        update.to = rekey::Recipient::to_subgroup(b.root.id);
        update.header.group = config_.base.group;
        update.header.epoch = pending.epoch;
        update.header.timestamp_us = timestamp;
        update.header.kind = wire_kind;
        update.header.strategy = config_.base.strategy;
        update.ops.push_back(op_index);
        pending.plan.messages.push_back(std::move(update));
        pending.views.push_back(std::move(b.view));
      }
    }
    pending.op.kind = op_kind;
    pending.op.key_encryptions = pending.plan.key_encryptions;
  } catch (...) {
    retire(pending.epoch);
    throw;
  }
}

void ShardedGroupKeyServer::plan_resync(UserId user, Pending& pending) {
  const std::size_t shard = tree_->shard_of(user);
  pending.shard = shard;
  pending.started = std::chrono::steady_clock::now();
  const TreeViewPtr view = tree_->shard(shard).view();
  const std::vector<SymmetricKey> keys =
      view->keyset(user);  // throws for non-members
  std::optional<SymmetricKey> shared;
  {
    const std::lock_guard<std::mutex> lock(root_mutex_);
    pending.epoch = epoch_;
    if (shard_count() > 1) shared = shared_key_locked();
  }
  rekey::RekeyPlanner planner(config_.base.suite.cipher, tree_->rng(shard),
                              view);
  rekey::PlannedRekey welcome;
  welcome.header.group = config_.base.group;
  welcome.header.epoch = pending.epoch;
  welcome.header.timestamp_us = now_us();
  // Welcome-shaped on the wire (kJoin); only the OpRecord says kResync —
  // same contract as the single-tree server.
  welcome.header.kind = rekey::RekeyKind::kJoin;
  welcome.header.strategy = config_.base.strategy;
  std::vector<SymmetricKey> path(keys.begin() + (keys.empty() ? 0 : 1),
                                 keys.end());
  if (shared) path.push_back(*shared);
  if (!keys.empty() && !path.empty()) {
    welcome.ops.push_back(planner.wrap(keys.front(), path));
  }
  welcome.to = rekey::Recipient::to_user(user);
  std::vector<rekey::PlannedRekey> messages;
  messages.push_back(std::move(welcome));
  pending.plan = planner.take(std::move(messages));
  pending.views.assign(1, view);
  pending.lane_view = view;
  pending.op.kind = rekey::RekeyKind::kResync;
  pending.op.key_encryptions = pending.plan.key_encryptions;
  pending.epoch = 0;  // unsequenced: dispatches directly
  if (telemetry::enabled()) {
    static auto& resyncs =
        telemetry::Registry::global().counter("server.resyncs");
    resyncs.add(1);
  }
}

// --- Seal + sequenced dispatch ------------------------------------------

void ShardedGroupKeyServer::retire(std::uint64_t epoch) {
  std::unique_lock<std::mutex> order(sequence_mutex_);
  sequence_cv_.wait(order, [&] { return next_dispatch_ == epoch; });
  ++next_dispatch_;
  sequence_cv_.notify_all();
}

void ShardedGroupKeyServer::seal_and_dispatch(Lane& lane, Pending&& pending) {
  const auto seal_started = std::chrono::steady_clock::now();
  try {
    pending.sealed = lane.executor->seal(pending.plan, *sealer_);
  } catch (...) {
    if (pending.epoch != 0) retire(pending.epoch);
    throw;
  }
  const double seal_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - seal_started)
          .count();
  // Per-shard seal feedback: a lane whose EWMA blows past the degrade
  // threshold trips its own circuit breaker (the "one slow shard" case).
  if (config_.base.overload.enabled && !replaying_) {
    const auto sample = static_cast<std::uint64_t>(seal_us);
    health_->note_seal_us(sample);
    gate_->note_seal(pending.shard, sample, now_us());
  }

  if (pending.epoch == 0) {
    // Resync: not part of the stitched epoch stream; deliver whenever the
    // dispatch lock is free.
    const std::lock_guard<std::mutex> lock(dispatch_mutex_);
    dispatch_locked(lane, pending, seal_us);
    return;
  }
  std::unique_lock<std::mutex> order(sequence_mutex_);
  sequence_cv_.wait(order, [&] { return next_dispatch_ == pending.epoch; });
  try {
    const std::lock_guard<std::mutex> lock(dispatch_mutex_);
    dispatch_locked(lane, pending, seal_us);
  } catch (...) {
    ++next_dispatch_;
    sequence_cv_.notify_all();
    throw;
  }
  ++next_dispatch_;
  sequence_cv_.notify_all();
}

void ShardedGroupKeyServer::dispatch_locked(Lane& lane, Pending& pending,
                                            double seal_us) {
  OpRecord op = pending.op;
  op.signatures = sealer_->signatures_for(pending.sealed.size());
  op.messages = pending.sealed.size();
  op.min_message = std::numeric_limits<std::size_t>::max();
  const bool resync = op.kind == rekey::RekeyKind::kResync;
  const bool remember =
      retransmit_.enabled() && !resync && !pending.plan.messages.empty();
  std::vector<rekey::StoredDatagram> stored;
  if (remember) stored.reserve(pending.sealed.size());
  // Write-ahead commit: the record (with its sealed digest) is durable on
  // this shard's lane before any datagram leaves or the dispatch ticket is
  // released. Tickets are held in epoch order, so the global commit
  // sequence the append assigns is in epoch order too.
  if (durable_ != nullptr && pending.commit != nullptr) {
    pending.commit->sealed_digest = sealed_digest(pending.sealed);
    durable_->append(*pending.commit);
  }
  if (telemetry::enabled() && !resync && !pending.plan.messages.empty()) {
    telemetry::ConvergenceMonitor::global().note_publish(
        pending.epoch, now_us() * 1000, pending.fleet);
  }
  std::optional<rekey::TraceExtension> extension;
  if (pending.trace_id != 0) {
    extension =
        rekey::TraceExtension{pending.trace_id, pending.epoch,
                              static_cast<std::uint8_t>(op.kind)};
  }
  // Frame the whole burst, then deliver it through one deliver_many call
  // (gather-capable transports batch the syscalls; the default loops
  // deliver() in the same order as before).
  std::vector<Bytes> datagrams(pending.sealed.size());
  std::vector<transport::ServerTransport::OutboundDatagram> items;
  items.reserve(pending.sealed.size());
  for (std::size_t i = 0; i < pending.sealed.size(); ++i) {
    datagrams[i] = rekey::Datagram{rekey::MessageType::kRekey,
                                   pending.sealed[i].wire, extension}
                       .encode();
    op.bytes += datagrams[i].size();
    op.min_message = std::min(op.min_message, datagrams[i].size());
    op.max_message = std::max(op.max_message, datagrams[i].size());
    const rekey::Recipient to = pending.sealed[i].to;
    const TreeViewPtr& view = pending.views[i];
    items.push_back({to, datagrams[i], [view, to] {
                       return to.kind == rekey::Recipient::Kind::kUser
                                  ? std::vector<UserId>{to.user}
                                  : view->resolve_subgroup(to.include,
                                                           to.exclude);
                     }});
  }
  transport_.deliver_many(items);
  if (remember) {
    for (std::size_t i = 0; i < pending.sealed.size(); ++i) {
      // Pin the per-datagram view: broadcasts address other shards, so the
      // entry-level (lane) view cannot answer their recipient filters.
      stored.push_back(rekey::StoredDatagram{
          pending.sealed[i].to, std::move(datagrams[i]), pending.views[i]});
    }
  }
  if (remember) {
    retransmit_.record(pending.epoch, pending.lane_view, std::move(stored));
  }
  if (op.messages == 0) op.min_message = 0;
  op.processing_us = std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - pending.started)
                         .count();
  stats_.record(op);
  if (telemetry::enabled() && !resync) {
    lane.users->set(
        static_cast<std::int64_t>(pending.lane_view->user_count()));
    lane.epoch->set(static_cast<std::int64_t>(pending.epoch));
    lane.seal_us->set(static_cast<std::int64_t>(seal_us));
    fleet_users_->set(static_cast<std::int64_t>(pending.fleet));
    fleet_epoch_->set(static_cast<std::int64_t>(pending.epoch));
    fleet_seal_us_->set(static_cast<std::int64_t>(seal_us));
  }
}

// --- Membership entry points --------------------------------------------

JoinResult ShardedGroupKeyServer::join(UserId user) {
  const std::size_t shard = tree_->shard_of(user);
  Lane& lane = *lanes_[shard];
  Pending pending;
  {
    const std::lock_guard<std::mutex> lock(lane.mutex);
    const JoinResult result = plan_join_locked(user, shard, pending);
    if (result != JoinResult::kGranted) return result;
  }
  seal_and_dispatch(lane, std::move(pending));
  return JoinResult::kGranted;
}

JoinResult ShardedGroupKeyServer::join_with_token(UserId user,
                                                  BytesView token) {
  if (!auth_.verify_join_token(user, token)) {
    if (telemetry::enabled()) {
      static auto& denied =
          telemetry::Registry::global().counter("server.auth_denied");
      denied.add(1);
    }
    return JoinResult::kDenied;
  }
  return join(user);
}

void ShardedGroupKeyServer::leave(UserId user) {
  const std::size_t shard = tree_->shard_of(user);
  Lane& lane = *lanes_[shard];
  Pending pending;
  {
    const std::lock_guard<std::mutex> lock(lane.mutex);
    plan_leave_locked(user, shard, pending);
  }
  seal_and_dispatch(lane, std::move(pending));
}

bool ShardedGroupKeyServer::leave_with_token(UserId user, BytesView token) {
  if (!auth_.verify_leave_token(user, token)) return false;
  if (!tree_->has_user(user)) return false;
  leave(user);
  return true;
}

std::vector<UserId> ShardedGroupKeyServer::batch(
    const std::vector<UserId>& join_users,
    const std::vector<UserId>& leave_users) {
  const std::size_t shards = shard_count();
  std::vector<std::vector<UserId>> joins_by_shard(shards);
  std::vector<std::vector<UserId>> leaves_by_shard(shards);
  for (UserId user : join_users) {
    joins_by_shard[tree_->shard_of(user)].push_back(user);
  }
  for (UserId user : leave_users) {
    leaves_by_shard[tree_->shard_of(user)].push_back(user);
  }
  std::vector<UserId> admitted;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    if (joins_by_shard[shard].empty() && leaves_by_shard[shard].empty()) {
      continue;
    }
    Lane& lane = *lanes_[shard];
    Pending pending;
    std::vector<UserId> shard_admitted;
    {
      const std::lock_guard<std::mutex> lock(lane.mutex);
      shard_admitted = plan_batch_locked(shard, joins_by_shard[shard],
                                         leaves_by_shard[shard], pending);
    }
    if (pending.epoch != 0) seal_and_dispatch(lane, std::move(pending));
    admitted.insert(admitted.end(), shard_admitted.begin(),
                    shard_admitted.end());
  }
  return admitted;
}

// --- Overload control ----------------------------------------------------

GateResult ShardedGroupKeyServer::offer_join(UserId user, BytesView token) {
  GateResult result;
  if (!config_.base.overload.enabled) return result;  // kAdmit: normal path
  if (!auth_.verify_join_token(user, token) || !acl_.authorizes(user)) {
    result.denied = true;
    return result;
  }
  const std::size_t shard = shard_of(user);
  const std::lock_guard<std::mutex> lock(overload_mutex_);
  if (const auto it = buffered_.find(user); it != buffered_.end()) {
    if (it->second) {
      result.action = overload::Admission::kCoalesce;  // idempotent dup
      return result;
    }
    result.action = overload::Admission::kShed;  // leave buffered: retry
    result.retry_after_us = config_.base.overload.degraded_batch_period_us;
    return result;
  }
  if (has_member(user)) return result;  // duplicate join: cheap no-op
  const overload::Decision decision =
      gate_->admit(shard, now_us(), health_->state());
  result.action = decision.action;
  result.retry_after_us = decision.retry_after_us;
  if (decision.action == overload::Admission::kCoalesce) {
    buffered_.emplace(user, true);
    buffers_[shard].joins.push_back({user, now_us()});
  }
  return result;
}

GateResult ShardedGroupKeyServer::offer_leave(UserId user, BytesView token) {
  GateResult result;
  if (!config_.base.overload.enabled) return result;
  if (!auth_.verify_leave_token(user, token)) {
    result.denied = true;
    return result;
  }
  const std::size_t shard = shard_of(user);
  const std::lock_guard<std::mutex> lock(overload_mutex_);
  if (const auto it = buffered_.find(user); it != buffered_.end()) {
    if (!it->second) {
      result.action = overload::Admission::kCoalesce;
      return result;
    }
    result.action = overload::Admission::kShed;  // join buffered: retry
    result.retry_after_us = config_.base.overload.degraded_batch_period_us;
    return result;
  }
  if (!has_member(user)) {
    result.denied = true;
    return result;
  }
  const overload::Decision decision =
      gate_->admit(shard, now_us(), health_->state());
  result.action = decision.action;
  result.retry_after_us = decision.retry_after_us;
  if (decision.action == overload::Admission::kCoalesce) {
    buffered_.emplace(user, false);
    buffers_[shard].leaves.push_back({user, now_us()});
  }
  return result;
}

OverloadTick ShardedGroupKeyServer::poll_overload() {
  OverloadTick tick;
  if (!config_.base.overload.enabled) return tick;
  health_->note_sheds(gate_->take_sheds());
  health_->note_queue_depth(gate_->total_depth());
  if (config_.base.overload.slo_lag_epochs > 0) {
    health_->note_slo_lag(telemetry::ConvergenceMonitor::global().max_lag());
  }
  health_->evaluate(now_us());

  std::vector<UserId> joins;
  std::vector<UserId> leaves;
  {
    const std::lock_guard<std::mutex> lock(overload_mutex_);
    if (buffered_.empty()) return tick;
    const std::uint64_t now = now_us();
    bool full = false;
    for (const ShardBuffer& buffer : buffers_) {
      if (buffer.joins.size() + buffer.leaves.size() >=
          config_.base.overload.admission_queue) {
        full = true;
        break;
      }
    }
    if (now < next_flush_us_ && !full) return tick;
    next_flush_us_ = now + config_.base.overload.degraded_batch_period_us;

    static auto& deadline_shed = telemetry::Registry::global().counter(
        "server.overload.deadline_shed",
        "Buffered ops shed because they waited past shed_deadline_us");
    const auto expired = [&](const CoalescedOp& op) {
      return config_.base.overload.shed_deadline_us > 0 &&
             now > op.offered_us &&
             now - op.offered_us > config_.base.overload.shed_deadline_us;
    };
    const std::uint64_t period = config_.base.overload.degraded_batch_period_us;
    for (std::size_t shard = 0; shard < buffers_.size(); ++shard) {
      ShardBuffer& buffer = buffers_[shard];
      for (const CoalescedOp& op : buffer.joins) {
        if (expired(op)) {
          tick.shed.push_back({op.user, true, period});
          if (telemetry::enabled()) deadline_shed.add(1);
        } else if (!has_member(op.user)) {
          joins.push_back(op.user);
        }
      }
      for (const CoalescedOp& op : buffer.leaves) {
        if (expired(op)) {
          tick.shed.push_back({op.user, false, period});
          if (telemetry::enabled()) deadline_shed.add(1);
        } else if (has_member(op.user)) {
          leaves.push_back(op.user);
        }
      }
      gate_->release(shard, buffer.joins.size() + buffer.leaves.size());
      buffer.joins.clear();
      buffer.leaves.clear();
    }
    buffered_.clear();
  }
  // batch() takes lane/root/dispatch locks — run it with overload_mutex_
  // dropped so offers from other threads never wait on a flush.
  if (!joins.empty() || !leaves.empty()) {
    tick.joined = batch(joins, leaves);
    tick.flushed = true;
  }
  return tick;
}

// --- Recovery -----------------------------------------------------------

void ShardedGroupKeyServer::resync(UserId user) {
  Pending pending;
  plan_resync(user, pending);
  Lane& lane = *lanes_[pending.shard];
  seal_and_dispatch(lane, std::move(pending));
}

bool ShardedGroupKeyServer::resync_with_token(UserId user, BytesView token) {
  if (!auth_.verify_resync_token(user, token)) return false;
  if (!has_member(user)) return false;
  resync(user);
  return true;
}

std::optional<NackOutcome> ShardedGroupKeyServer::try_retransmit_locked(
    UserId user, std::uint64_t have_epoch) {
  if (telemetry::enabled()) RetransmitMetrics::get().nacks.add(1);
  if (!limiter_.admit(user, now_us())) {
    if (telemetry::enabled()) RetransmitMetrics::get().rate_limited.add(1);
    return NackOutcome::kRateLimited;
  }
  if (retransmit_.enabled()) {
    if (const auto replays = retransmit_.collect(user, have_epoch)) {
      if (telemetry::enabled()) {
        RetransmitMetrics::get().served.add(1);
        RetransmitMetrics::get().datagrams.add(replays->size());
      }
      const rekey::Recipient to = rekey::Recipient::to_user(user);
      for (const BytesView datagram : *replays) {
        transport_.deliver(to, datagram,
                           [user] { return std::vector<UserId>{user}; });
      }
      return NackOutcome::kRetransmitted;
    }
    if (telemetry::enabled()) RetransmitMetrics::get().out_of_window.add(1);
  }
  if (telemetry::enabled()) RetransmitMetrics::get().resync_fallbacks.add(1);
  return std::nullopt;
}

NackOutcome ShardedGroupKeyServer::handle_nack(UserId user,
                                               std::uint64_t have_epoch) {
  if (!has_member(user)) {
    throw ProtocolError("nack from non-member user " + std::to_string(user));
  }
  {
    const std::lock_guard<std::mutex> lock(dispatch_mutex_);
    if (const auto outcome = try_retransmit_locked(user, have_epoch)) {
      return *outcome;
    }
  }
  resync(user);
  return NackOutcome::kResynced;
}

std::optional<NackOutcome> ShardedGroupKeyServer::nack_with_token(
    UserId user, BytesView token, std::uint64_t have_epoch) {
  if (!auth_.verify_resync_token(user, token)) return std::nullopt;
  if (!has_member(user)) return std::nullopt;
  return handle_nack(user, have_epoch);
}

// --- Bulk build ---------------------------------------------------------

void ShardedGroupKeyServer::preload(const std::vector<UserId>& users) {
  // Bounded batch_update chunks: BatchRecord materializes every joiner's
  // keyset, so one million-user update would hold the whole group's path
  // key material at once. 8192 keeps the record and the per-chunk view
  // publish both small while amortizing the per-publish node copy.
  constexpr std::size_t kChunk = 8192;
  const std::size_t shards = shard_count();
  std::vector<std::vector<UserId>> by_shard(shards);
  for (UserId user : users) {
    if (!acl_.authorizes(user)) continue;
    by_shard[tree_->shard_of(user)].push_back(user);
  }
  for (std::size_t shard = 0; shard < shards; ++shard) {
    KeyTree& tree = tree_->shard(shard);
    std::vector<std::pair<UserId, Bytes>> joins;
    std::vector<UserId> chunk_users;
    joins.reserve(std::min(kChunk, by_shard[shard].size()));
    // One kPreload record per chunk: epoch 0 (no rekey was sent), carrying
    // the admitted ids and the chunk's lane-rng tape so recovery rebuilds
    // the same tree bytes before replaying the epoch stream.
    const auto flush = [&] {
      if (joins.empty()) return;
      std::optional<crypto::RngCapture> capture;
      if (durable_ != nullptr && !replaying_) {
        capture.emplace(tree_->rng(shard));
      }
      tree.batch_update(joins, {});
      if (capture) {
        storage::JournalRecord record;
        record.kind = storage::OpKind::kPreload;
        record.shard = static_cast<std::uint32_t>(shard);
        record.timestamp_us = now_us();
        record.joins = chunk_users;
        record.rng_tape = capture->take();
        durable_->append(record);
      }
      joins.clear();
      chunk_users.clear();
    };
    for (UserId user : by_shard[shard]) {
      if (tree.has_user(user)) continue;
      joins.emplace_back(
          user, auth_.individual_key(user, config_.base.suite.key_size()));
      chunk_users.push_back(user);
      if (joins.size() == kChunk) flush();
    }
    flush();
  }
  const std::lock_guard<std::mutex> lock(root_mutex_);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    const TreeViewPtr view = tree_->shard(shard).view();
    shard_roots_[shard] = view->group_key();
    shard_views_[shard] = view;
  }
}

// --- Durable state ------------------------------------------------------

void ShardedGroupKeyServer::recover_from_storage(
    const storage::RecoveryOptions& options) {
  if (durable_ == nullptr) {
    throw storage::StorageError(
        "recover_from_storage: storage is not configured");
  }
  storage::RecoveredLog log = durable_->load(options);
  if (log.snapshot) {
    // The sharded server never compacts (there is no cross-shard snapshot
    // format); a snapshot here means the journal belongs to a single-tree
    // deployment and this config cannot restore it.
    throw storage::JournalCorruptError(
        "recover: journal carries a snapshot but the server is sharded");
  }
  for (const storage::JournalRecord& record : log.records) {
    replay_record(record, options);
  }
  if (telemetry::enabled()) {
    static auto& replay_ops = telemetry::Registry::global().counter(
        "storage.replay_ops", "journal records replayed during recovery");
    replay_ops.add(log.records.size());
    telemetry::ConvergenceMonitor::global().restart_from(epoch());
  }
}

void ShardedGroupKeyServer::replay_record(
    const storage::JournalRecord& record,
    const storage::RecoveryOptions& options) {
  const ScopedFlag replaying(replaying_);
  pinned_clock_us_ = record.timestamp_us;
  try {
    const std::size_t shard = record.shard;
    if (shard >= shard_count()) {
      throw storage::ReplayDivergenceError(
          "replay: record names shard " + std::to_string(shard) +
          " but the server has " + std::to_string(shard_count()));
    }
    if (record.kind == storage::OpKind::kPreload) {
      if (record.epoch != 0 || !record.leaves.empty()) {
        throw storage::ReplayDivergenceError(
            "replay: malformed preload record (sequence " +
            std::to_string(record.sequence) + ")");
      }
      KeyTree& tree = tree_->shard(shard);
      {
        const crypto::RngTape tape(tree_->rng(shard), record.rng_tape);
        std::vector<std::pair<UserId, Bytes>> joins;
        joins.reserve(record.joins.size());
        for (const UserId user : record.joins) {
          joins.emplace_back(
              user,
              auth_.individual_key(user, config_.base.suite.key_size()));
        }
        tree.batch_update(joins, {});
        if (tape.remaining() != 0) {
          throw storage::ReplayDivergenceError(
              "replay: preload chunk left " +
              std::to_string(tape.remaining()) + " rng tape bytes unread");
        }
      }
      const std::lock_guard<std::mutex> lock(root_mutex_);
      const TreeViewPtr view = tree.view();
      shard_roots_[shard] = view->group_key();
      shard_views_[shard] = view;
      return;
    }

    Lane& lane = *lanes_[shard];
    Pending pending;
    {
      const std::lock_guard<std::mutex> lock(lane.mutex);
      // Two tapes, two streams: the lane rng (tree mutation + plan) and
      // the root rng (G refresh + stitch IVs). Both must drain exactly.
      const crypto::RngTape tape(tree_->rng(shard), record.rng_tape);
      const crypto::RngTape root_tape(root_rng_, record.root_tape);
      switch (record.kind) {
        case storage::OpKind::kJoin: {
          if (record.joins.size() != 1 || !record.leaves.empty()) {
            throw storage::ReplayDivergenceError(
                "replay: malformed join record at epoch " +
                std::to_string(record.epoch));
          }
          const JoinResult result =
              plan_join_locked(record.joins.front(), shard, pending);
          if (result != JoinResult::kGranted) {
            throw storage::ReplayDivergenceError(
                "replay: journaled join of user " +
                std::to_string(record.joins.front()) +
                " not granted (epoch " + std::to_string(record.epoch) + ")");
          }
          break;
        }
        case storage::OpKind::kLeave: {
          if (record.leaves.size() != 1 || !record.joins.empty()) {
            throw storage::ReplayDivergenceError(
                "replay: malformed leave record at epoch " +
                std::to_string(record.epoch));
          }
          plan_leave_locked(record.leaves.front(), shard, pending);
          break;
        }
        case storage::OpKind::kBatch: {
          const std::vector<UserId> admitted = plan_batch_locked(
              shard, record.joins, record.leaves, pending);
          if (admitted != record.joins) {
            throw storage::ReplayDivergenceError(
                "replay: batch at epoch " + std::to_string(record.epoch) +
                " admitted a different join set than the journal");
          }
          break;
        }
        case storage::OpKind::kPreload:
          break;  // handled above; unreachable
      }
      if (tape.remaining() != 0 || root_tape.remaining() != 0) {
        throw storage::ReplayDivergenceError(
            "replay: epoch " + std::to_string(record.epoch) +
            " left rng tape bytes unread (lane " +
            std::to_string(tape.remaining()) + ", root " +
            std::to_string(root_tape.remaining()) + ")");
      }
    }
    if (pending.epoch != record.epoch) {
      throw storage::ReplayDivergenceError(
          "replay: operation allocated epoch " +
          std::to_string(pending.epoch) + " but the journal recorded " +
          std::to_string(record.epoch));
    }
    pending.sealed = lane.executor->seal(pending.plan, *sealer_);
    absorb_replayed(std::move(pending), record, options);
  } catch (const storage::StorageError&) {
    throw;
  } catch (const Error& error) {
    throw storage::ReplayDivergenceError(std::string("replay: ") +
                                         error.what());
  }
}

void ShardedGroupKeyServer::absorb_replayed(
    Pending&& pending, const storage::JournalRecord& record,
    const storage::RecoveryOptions& options) {
  if (options.verify_digests &&
      sealed_digest(pending.sealed) != record.sealed_digest) {
    throw storage::ReplayDivergenceError(
        "replay: epoch " + std::to_string(record.epoch) +
        " sealed bytes diverge from the journaled digest");
  }
  {
    // Release the replayed op's ticket so the next record (and, after
    // recovery, live traffic) dispatches at epoch_ + 1.
    const std::lock_guard<std::mutex> order(sequence_mutex_);
    next_dispatch_ = pending.epoch + 1;
  }
  // No transport, no stats, no publish — but the retransmit window fills
  // exactly as the original dispatch filled it (per-datagram views and
  // all), so a promoted replica serves pre-failover NACKs warm.
  if (!retransmit_.enabled() || pending.plan.messages.empty()) return;
  const std::lock_guard<std::mutex> lock(dispatch_mutex_);
  std::vector<rekey::StoredDatagram> stored;
  stored.reserve(pending.sealed.size());
  for (std::size_t i = 0; i < pending.sealed.size(); ++i) {
    const rekey::SealedRekey& sealed = pending.sealed[i];
    Bytes datagram =
        rekey::Datagram{rekey::MessageType::kRekey, sealed.wire, std::nullopt}
            .encode();
    stored.push_back(
        rekey::StoredDatagram{sealed.to, std::move(datagram),
                              pending.views[i]});
  }
  retransmit_.record(pending.epoch, pending.lane_view, std::move(stored));
}

// --- Introspection ------------------------------------------------------

std::uint64_t ShardedGroupKeyServer::epoch() const {
  const std::lock_guard<std::mutex> lock(root_mutex_);
  return epoch_;
}

KeyId ShardedGroupKeyServer::root_id() const noexcept {
  return shard_count() == 1 ? tree_->shard(0).root_id() : kSharedGroupKeyId;
}

SymmetricKey ShardedGroupKeyServer::group_key() const {
  if (shard_count() == 1) return tree_->shard(0).view()->group_key();
  const std::lock_guard<std::mutex> lock(root_mutex_);
  return shared_key_locked();
}

std::vector<SymmetricKey> ShardedGroupKeyServer::keyset(UserId user) const {
  std::vector<SymmetricKey> keys =
      tree_->shard(tree_->shard_of(user)).view()->keyset(user);
  if (shard_count() > 1) {
    const std::lock_guard<std::mutex> lock(root_mutex_);
    keys.push_back(shared_key_locked());
  }
  return keys;
}

std::size_t ShardedGroupKeyServer::member_count() const {
  return tree_->user_count();
}

bool ShardedGroupKeyServer::has_member(UserId user) const {
  return tree_->has_user(user);
}

std::size_t ShardedGroupKeyServer::shard_count() const noexcept {
  return tree_->shard_count();
}

std::size_t ShardedGroupKeyServer::shard_of(UserId user) const noexcept {
  return tree_->shard_of(user);
}

TreeViewPtr ShardedGroupKeyServer::shard_view(std::size_t shard) const {
  return tree_->shard(shard).view();
}

const crypto::RsaPublicKey* ShardedGroupKeyServer::public_key()
    const noexcept {
  return signer_ ? &signer_->public_key() : nullptr;
}

}  // namespace keygraphs::server

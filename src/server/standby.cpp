#include "server/standby.h"

#include "telemetry/convergence.h"
#include "telemetry/metrics.h"

namespace keygraphs::server {

StandbyServer::StandbyServer(ServerConfig config,
                             transport::ServerTransport& transport,
                             AccessControl acl)
    : server_(std::move(config), transport, std::move(acl)) {
  if (server_.durable() == nullptr) {
    throw storage::StorageError(
        "StandbyServer: config.storage must be enabled");
  }
  // Tailing never throws for a torn tail (the primary may be mid-append),
  // but digests are verified on every replayed record: a diverging standby
  // must fail fast, not get promoted.
  options_.tolerate_torn_tail = true;
  options_.verify_digests = true;
}

std::size_t StandbyServer::poll() {
  if (promoted_) return 0;
  storage::Tail tail = server_.durable()->tail(cursor_);
  // replaying_ stays latched across the whole batch: restore() must not
  // re-anchor the (process-global, primary-shared) convergence monitor
  // while the primary is still the live timeline.
  server_.replaying_ = true;
  try {
    if (tail.snapshot && tail.snapshot_epoch > server_.epoch()) {
      server_.restore(*tail.snapshot);
    }
    for (const storage::JournalRecord& record : tail.records) {
      server_.replay_record(record, options_);
    }
  } catch (...) {
    server_.replaying_ = false;
    throw;
  }
  server_.replaying_ = false;
  if (telemetry::enabled() && !tail.records.empty()) {
    static auto& applied = telemetry::Registry::global().counter(
        "storage.standby_applied", "journal records applied by standbys");
    applied.add(tail.records.size());
  }
  return tail.records.size();
}

GroupKeyServer& StandbyServer::promote() {
  if (promoted_) return server_;
  poll();  // drain everything the dead primary made durable
  // The primary may have died mid-append; those torn bytes were never
  // dispatched, and our own appends must start on a frame boundary.
  server_.durable()->drop_tail_after(cursor_);
  promoted_ = true;
  if (telemetry::enabled()) {
    static auto& promotions = telemetry::Registry::global().counter(
        "storage.promotions", "standby-to-primary promotions");
    promotions.add(1);
    // Take over the live timeline: the monitor's publish ring belongs to
    // the dead primary; anchor it at our converged epoch so post-failover
    // publishes (and only those) are scored.
    telemetry::ConvergenceMonitor::global().restart_from(server_.epoch());
  }
  return server_;
}

}  // namespace keygraphs::server

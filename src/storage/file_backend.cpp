// File backend: one append-only segment file per (lane, generation),
// fdatasync'd on sync(), plus the shared meta/snapshot files from
// fs_util.h. Single-writer / multi-reader: the owning server is the only
// appender and compactor, so it trusts its cached generation; readers
// (a standby process tailing the same directory) re-read meta on every
// call so they notice compactions done under their feet.
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <vector>

#include "storage/backend.h"
#include "storage/fs_util.h"

namespace keygraphs::storage {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw StorageError(what + ": " + std::strerror(errno));
}

class FileBackend final : public StorageBackend {
 public:
  FileBackend(std::string dir, std::size_t lanes)
      : dir_(std::move(dir)), fds_(lanes, -1) {
    ensure_journal_dir(dir_);
    generation_ = read_generation(dir_);
  }

  ~FileBackend() override {
    for (const int fd : fds_) {
      if (fd >= 0) ::close(fd);
    }
  }

  [[nodiscard]] const char* name() const noexcept override { return "file"; }
  [[nodiscard]] std::size_t lanes() const noexcept override {
    return fds_.size();
  }

  void append(std::size_t lane, BytesView frame) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    const int fd = writer_fd(lane);
    std::size_t done = 0;
    while (done < frame.size()) {
      const ssize_t n = ::write(fd, frame.data() + done, frame.size() - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("append " + seg_path(lane, generation_));
      }
      done += static_cast<std::size_t>(n);
    }
  }

  void sync(std::size_t lane) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    check_lane(lane);
    const int fd = fds_[lane];
    if (fd < 0) return;  // nothing appended yet
    if (::fdatasync(fd) != 0) {
      throw_errno("fdatasync " + seg_path(lane, generation_));
    }
  }

  [[nodiscard]] Bytes read_journal(std::size_t lane,
                                   std::size_t offset) const override {
    check_lane(lane);
    const auto data = read_file(seg_path(lane, read_generation(dir_)));
    if (!data || offset >= data->size()) return {};
    return Bytes(data->begin() + static_cast<std::ptrdiff_t>(offset),
                 data->end());
  }

  [[nodiscard]] std::size_t journal_size(std::size_t lane) const override {
    check_lane(lane);
    struct stat st = {};
    if (::stat(seg_path(lane, read_generation(dir_)).c_str(), &st) != 0) {
      return 0;
    }
    return static_cast<std::size_t>(st.st_size);
  }

  void truncate(std::size_t lane, std::size_t size) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    check_lane(lane);
    if (fds_[lane] >= 0) {
      ::close(fds_[lane]);
      fds_[lane] = -1;
    }
    const std::string path = seg_path(lane, generation_);
    struct stat st = {};
    if (::stat(path.c_str(), &st) != 0) return;  // nothing to cut
    if (static_cast<std::size_t>(st.st_size) <= size) return;
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      throw_errno("truncate " + path);
    }
    fsync_path(path);
  }

  void compact(std::uint64_t epoch, BytesView snapshot) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Snapshot first: if we crash before the meta bump, recovery restores
    // the new snapshot and skips the (still present) journaled epochs
    // at or below it.
    write_snapshot_file(dir_, epoch, snapshot);
    const std::uint64_t next = generation_ + 1;
    write_generation(dir_, next);
    for (int& fd : fds_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    generation_ = next;
    remove_stale_segments(dir_, next);
  }

  [[nodiscard]] std::optional<Bytes> read_snapshot() const override {
    auto snapshot = read_snapshot_file(dir_);
    if (!snapshot) return std::nullopt;
    return std::move(snapshot->second);
  }

  [[nodiscard]] std::uint64_t snapshot_epoch() const override {
    const auto snapshot = read_snapshot_file(dir_);
    return snapshot ? snapshot->first : 0;
  }

  [[nodiscard]] std::uint64_t generation() const override {
    return read_generation(dir_);
  }

 private:
  void check_lane(std::size_t lane) const {
    if (lane >= fds_.size()) {
      throw StorageError("file backend: lane " + std::to_string(lane) +
                         " out of range");
    }
  }

  [[nodiscard]] std::string seg_path(std::size_t lane,
                                     std::uint64_t generation) const {
    return segment_path(dir_, lane, generation, ".log");
  }

  [[nodiscard]] int writer_fd(std::size_t lane) {
    check_lane(lane);
    int& fd = fds_[lane];
    if (fd < 0) {
      const std::string path = seg_path(lane, generation_);
      fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (fd < 0) throw_errno("open " + path);
    }
    return fd;
  }

  const std::string dir_;
  mutable std::mutex mutex_;
  std::uint64_t generation_ = 0;     // writer's cached view of meta
  std::vector<int> fds_;             // lazily opened per-lane segment fds
};

}  // namespace

std::shared_ptr<StorageBackend> make_file_backend(const std::string& dir,
                                                  std::size_t lanes) {
  return std::make_shared<FileBackend>(dir, lanes == 0 ? 1 : lanes);
}

}  // namespace keygraphs::storage

// FaultyStorageBackend: a deterministic fault-injecting decorator over any
// StorageBackend, for testing how the durable-state layer behaves when the
// disk misbehaves. Faults are drawn from a seeded counter-based stream, so
// a failing test reproduces byte-for-byte from its seed alone.
//
// Three injectable failure modes, each surfaced as a typed StorageError
// exactly where a real backend would throw it:
//   append_error_rate — the append fails before any byte lands (EIO).
//   short_write_rate  — only a prefix of the frame lands in the inner
//                       backend, then the append throws: the journal now
//                       ends in a torn frame, exactly the shape a crash
//                       mid-write leaves behind.
//   sync_error_rate   — the append landed but fsync fails; the caller must
//                       treat the record as not durable.
// Plus a hard wall: after `fail_after_appends` successful appends every
// further append fails (a full disk does not recover by retrying).
#pragma once

#include <cstdint>
#include <memory>

#include "storage/backend.h"

namespace keygraphs::storage {

/// Deterministic fault schedule (all rates in [0, 1]; 0 = never).
struct FaultPlan {
  std::uint64_t seed = 1;
  double append_error_rate = 0.0;
  double short_write_rate = 0.0;
  double sync_error_rate = 0.0;
  /// After this many successful appends, every append fails (0 = no wall).
  std::uint64_t fail_after_appends = 0;
};

/// How many of each fault the decorator actually injected.
struct FaultCounts {
  std::uint64_t append_errors = 0;
  std::uint64_t short_writes = 0;
  std::uint64_t sync_errors = 0;
};

class FaultyStorageBackend final : public StorageBackend {
 public:
  FaultyStorageBackend(std::shared_ptr<StorageBackend> inner, FaultPlan plan);

  [[nodiscard]] const char* name() const noexcept override;
  [[nodiscard]] std::size_t lanes() const noexcept override;
  void append(std::size_t lane, BytesView frame) override;
  void sync(std::size_t lane) override;
  [[nodiscard]] Bytes read_journal(std::size_t lane,
                                   std::size_t offset) const override;
  [[nodiscard]] std::size_t journal_size(std::size_t lane) const override;
  void truncate(std::size_t lane, std::size_t size) override;
  void compact(std::uint64_t epoch, BytesView snapshot) override;
  [[nodiscard]] std::optional<Bytes> read_snapshot() const override;
  [[nodiscard]] std::uint64_t snapshot_epoch() const override;
  [[nodiscard]] std::uint64_t generation() const override;

  [[nodiscard]] const FaultCounts& injected() const noexcept {
    return injected_;
  }
  [[nodiscard]] StorageBackend& inner() noexcept { return *inner_; }

 private:
  /// The n-th draw of the seeded stream, uniform in [0, 1).
  [[nodiscard]] double draw();

  std::shared_ptr<StorageBackend> inner_;
  FaultPlan plan_;
  std::uint64_t draws_ = 0;
  std::uint64_t appends_ok_ = 0;
  FaultCounts injected_;
};

[[nodiscard]] std::shared_ptr<FaultyStorageBackend> make_faulty_backend(
    std::shared_ptr<StorageBackend> inner, FaultPlan plan);

}  // namespace keygraphs::storage

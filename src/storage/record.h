// The journal record: one committed membership operation, serialized as a
// CRC-framed little-endian blob.
//
// The record stores the operation's *inputs* — user lists, the pinned
// timestamp, and a tape of every byte the plan phase drew from its rng —
// not its outputs. Recovery re-runs the operation through the real
// plan/seal pipeline with the tape injected (crypto/random.h RngTape) and
// the clock pinned, which reproduces the exact keys, IVs, and sealed wire
// bytes of the original dispatch on any replica, even one seeded
// differently (individual keys derive from auth_master, everything else
// from the tape). `sealed_digest` closes the loop: replay recomputes the
// digest over its sealed bytes and a mismatch is a typed
// ReplayDivergenceError instead of a silently wrong key tree.
//
// Frame layout (journal byte stream):
//   u32 magic 'KGWL' | u32 payload length | u32 crc32(payload) | payload
//
// Payload layout:
//   u64 sequence       — global commit order across journal lanes
//   u64 epoch          — 0 for kPreload records (no epoch advance)
//   u8  kind           — OpKind
//   u32 shard          — owning shard lane (0 on the unsharded server)
//   u64 timestamp_us   — the header timestamp the plan stamped
//   u32 n + n×u64      — join user ids (admitted, in plan order)
//   u32 n + n×u64      — leave user ids
//   var rng_tape       — plan-phase draws from the (lane) rng
//   var root_tape      — root-layer draws (sharded stitch; empty otherwise)
//   var sealed_digest  — digest over concatenated sealed wire bytes
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "storage/errors.h"

namespace keygraphs::storage {

/// Journaled operation kinds. Values 1..3 match rekey::RekeyKind; resyncs
/// are never journaled (they mutate nothing), and kPreload records the
/// sharded server's bulk-build chunks, which advance no epoch.
enum class OpKind : std::uint8_t {
  kJoin = 1,
  kLeave = 2,
  kBatch = 3,
  kPreload = 10,
};

struct JournalRecord {
  std::uint64_t sequence = 0;
  std::uint64_t epoch = 0;
  OpKind kind = OpKind::kJoin;
  std::uint32_t shard = 0;
  std::uint64_t timestamp_us = 0;
  std::vector<std::uint64_t> joins;
  std::vector<std::uint64_t> leaves;
  Bytes rng_tape;
  Bytes root_tape;
  Bytes sealed_digest;

  /// Payload bytes (no frame). decode_payload round-trips exactly.
  [[nodiscard]] Bytes encode_payload() const;
  /// Throws JournalCorruptError on malformed payloads.
  [[nodiscard]] static JournalRecord decode_payload(BytesView payload);

  /// Full frame: magic + length + CRC + payload.
  [[nodiscard]] Bytes encode_frame() const;
};

constexpr std::uint32_t kFrameMagic = 0x4c57474bu;  // "KGWL" little-endian
/// Frame header bytes preceding the payload.
constexpr std::size_t kFrameHeaderSize = 12;
/// Refuse absurd lengths before trusting a (CRC-unprotected) length field.
constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/// Result of scanning one lane's journal byte stream.
struct FrameScan {
  std::vector<JournalRecord> records;
  /// Bytes consumed by complete, valid frames; a torn tail (or, with
  /// stop_on_partial, an in-progress append) leaves the stream offset here.
  std::size_t consumed = 0;
  /// True when bytes past `consumed` formed an incomplete frame.
  bool torn_tail = false;
};

/// Decodes frames back-to-back from `stream`. A short final frame sets
/// torn_tail (never throws for it — the caller decides strict vs tolerant);
/// anything else malformed (bad magic, CRC mismatch, undecodable payload)
/// throws JournalCorruptError naming the byte offset. `base_offset` is only
/// for error messages (the stream's position within the whole journal).
[[nodiscard]] FrameScan scan_frames(BytesView stream,
                                    std::size_t base_offset = 0);

}  // namespace keygraphs::storage

#include "storage/fs_util.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/io.h"
#include "storage/crc32.h"

namespace keygraphs::storage {

namespace {

constexpr std::uint32_t kMetaMagic = 0x544d474bu;      // "KGMT"
constexpr std::uint32_t kSnapshotMagic = 0x4e53474bu;  // "KGSN"
constexpr const char* kMetaName = "meta";
constexpr const char* kSnapshotName = "snapshot.bin";

[[noreturn]] void throw_errno(const std::string& what) {
  throw StorageError(what + ": " + std::strerror(errno));
}

/// open(2) wrapper that closes on scope exit.
class Fd {
 public:
  Fd(const std::string& path, int flags, mode_t mode = 0644)
      : fd_(::open(path.c_str(), flags, mode)) {}
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool ok() const noexcept { return fd_ >= 0; }

 private:
  int fd_;
};

void write_all(int fd, BytesView data, const std::string& path) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write " + path);
    }
    done += static_cast<std::size_t>(n);
  }
}

}  // namespace

void ensure_journal_dir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw StorageError("journal_dir " + dir + ": " + ec.message());
  }
  if (::access(dir.c_str(), W_OK | X_OK) != 0) {
    throw_errno("journal_dir " + dir + " not writable");
  }
}

std::optional<Bytes> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  if (in.bad()) throw StorageError("read " + path + " failed");
  return data;
}

void fsync_path(const std::string& path) {
  Fd fd(path, O_RDONLY);
  if (!fd.ok()) throw_errno("open " + path + " for fsync");
  if (::fsync(fd.get()) != 0) throw_errno("fsync " + path);
}

void atomic_replace(const std::string& dir, const std::string& name,
                    BytesView contents) {
  const std::string target = dir + "/" + name;
  const std::string tmp = target + ".tmp";
  {
    Fd fd(tmp, O_WRONLY | O_CREAT | O_TRUNC);
    if (!fd.ok()) throw_errno("open " + tmp);
    write_all(fd.get(), contents, tmp);
    if (::fsync(fd.get()) != 0) throw_errno("fsync " + tmp);
  }
  if (::rename(tmp.c_str(), target.c_str()) != 0) {
    throw_errno("rename " + tmp + " -> " + target);
  }
  fsync_path(dir);  // make the rename itself durable
}

std::uint64_t read_generation(const std::string& dir) {
  const auto data = read_file(dir + "/" + kMetaName);
  if (!data) return 0;
  try {
    ByteReader reader(*data);
    if (reader.u32() != kMetaMagic) {
      throw JournalCorruptError("meta file " + dir + ": bad magic");
    }
    const std::uint64_t generation = reader.u64();
    const std::uint32_t crc = reader.u32();
    reader.expect_done();
    ByteWriter check;
    check.u64(generation);
    if (crc32(check.take()) != crc) {
      throw JournalCorruptError("meta file " + dir + ": CRC mismatch");
    }
    return generation;
  } catch (const ParseError& error) {
    throw JournalCorruptError("meta file " + dir + ": " + error.what());
  }
}

void write_generation(const std::string& dir, std::uint64_t generation) {
  ByteWriter body;
  body.u64(generation);
  const Bytes body_bytes = body.take();
  ByteWriter writer;
  writer.u32(kMetaMagic);
  writer.u64(generation);
  writer.u32(crc32(body_bytes));
  atomic_replace(dir, kMetaName, writer.take());
}

std::optional<std::pair<std::uint64_t, Bytes>> read_snapshot_file(
    const std::string& dir) {
  const auto data = read_file(dir + "/" + kSnapshotName);
  if (!data) return std::nullopt;
  try {
    ByteReader reader(*data);
    if (reader.u32() != kSnapshotMagic) {
      throw JournalCorruptError("snapshot file " + dir + ": bad magic");
    }
    const std::uint64_t epoch = reader.u64();
    const std::uint32_t crc = reader.u32();
    const Bytes payload = reader.raw(reader.remaining());
    if (crc32(payload) != crc) {
      throw JournalCorruptError("snapshot file " + dir + ": CRC mismatch");
    }
    return std::make_pair(epoch, payload);
  } catch (const ParseError& error) {
    throw JournalCorruptError("snapshot file " + dir + ": " + error.what());
  }
}

void write_snapshot_file(const std::string& dir, std::uint64_t epoch,
                         BytesView payload) {
  ByteWriter writer;
  writer.u32(kSnapshotMagic);
  writer.u64(epoch);
  writer.u32(crc32(payload));
  writer.raw(payload);
  atomic_replace(dir, kSnapshotName, writer.take());
}

std::string segment_path(const std::string& dir, std::size_t lane,
                         std::uint64_t generation, const char* suffix) {
  return dir + "/wal." + std::to_string(lane) + ".g" +
         std::to_string(generation) + suffix;
}

void remove_stale_segments(const std::string& dir, std::uint64_t keep) {
  const std::string tag = ".g" + std::to_string(keep) + ".";
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal.", 0) != 0) continue;
    if (name.find(tag) != std::string::npos) continue;
    std::filesystem::remove(entry.path(), ec);
  }
}

}  // namespace keygraphs::storage

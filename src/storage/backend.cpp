#include "storage/backend.h"

#include <mutex>
#include <vector>

namespace keygraphs::storage {

const char* kind_name(Kind kind) noexcept {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kMemory:
      return "memory";
    case Kind::kFile:
      return "file";
    case Kind::kMmap:
      return "mmap";
  }
  return "?";
}

namespace {

/// RAM backend. Internally locked: the failover tests share one instance
/// between a primary appending and a standby tailing.
class MemoryBackend final : public StorageBackend {
 public:
  explicit MemoryBackend(std::size_t lanes) : lanes_(lanes) {}

  [[nodiscard]] const char* name() const noexcept override { return "memory"; }
  [[nodiscard]] std::size_t lanes() const noexcept override { return lanes_.size(); }

  void append(std::size_t lane, BytesView frame) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    Bytes& journal = lane_at(lane);
    journal.insert(journal.end(), frame.begin(), frame.end());
  }

  void sync(std::size_t) override {}  // RAM is as durable as it gets

  [[nodiscard]] Bytes read_journal(std::size_t lane,
                                   std::size_t offset) const override {
    const std::lock_guard<std::mutex> lock(mutex_);
    const Bytes& journal = lane_at(lane);
    if (offset >= journal.size()) return {};
    return Bytes(journal.begin() + static_cast<std::ptrdiff_t>(offset),
                 journal.end());
  }

  [[nodiscard]] std::size_t journal_size(std::size_t lane) const override {
    const std::lock_guard<std::mutex> lock(mutex_);
    return lane_at(lane).size();
  }

  void truncate(std::size_t lane, std::size_t size) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    Bytes& journal = lane_at(lane);
    if (size < journal.size()) journal.resize(size);
  }

  void compact(std::uint64_t epoch, BytesView snapshot) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    snapshot_ = Bytes(snapshot.begin(), snapshot.end());
    snapshot_epoch_ = epoch;
    ++generation_;
    for (Bytes& journal : lanes_) journal.clear();
  }

  [[nodiscard]] std::optional<Bytes> read_snapshot() const override {
    const std::lock_guard<std::mutex> lock(mutex_);
    return snapshot_;
  }

  [[nodiscard]] std::uint64_t snapshot_epoch() const override {
    const std::lock_guard<std::mutex> lock(mutex_);
    return snapshot_epoch_;
  }

  [[nodiscard]] std::uint64_t generation() const override {
    const std::lock_guard<std::mutex> lock(mutex_);
    return generation_;
  }

 private:
  [[nodiscard]] Bytes& lane_at(std::size_t lane) {
    if (lane >= lanes_.size()) {
      throw StorageError("memory backend: lane " + std::to_string(lane) +
                         " out of range");
    }
    return lanes_[lane];
  }
  [[nodiscard]] const Bytes& lane_at(std::size_t lane) const {
    return const_cast<MemoryBackend*>(this)->lane_at(lane);
  }

  mutable std::mutex mutex_;
  std::vector<Bytes> lanes_;
  std::optional<Bytes> snapshot_;
  std::uint64_t snapshot_epoch_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace

std::shared_ptr<StorageBackend> make_memory_backend(std::size_t lanes) {
  return std::make_shared<MemoryBackend>(lanes == 0 ? 1 : lanes);
}

std::shared_ptr<StorageBackend> make_backend(const StorageConfig& config,
                                             std::size_t lanes) {
  if (config.backend != nullptr) return config.backend;
  switch (config.kind) {
    case Kind::kNone:
      throw StorageError("make_backend: storage is disabled (kind = none)");
    case Kind::kMemory:
      return make_memory_backend(lanes);
    case Kind::kFile:
    case Kind::kMmap:
      if (config.journal_dir.empty()) {
        throw StorageError(std::string("make_backend: storage = ") +
                           kind_name(config.kind) + " requires journal_dir");
      }
      return config.kind == Kind::kFile
                 ? make_file_backend(config.journal_dir, lanes)
                 : make_mmap_backend(config.journal_dir, lanes);
  }
  throw StorageError("make_backend: unknown storage kind");
}

}  // namespace keygraphs::storage

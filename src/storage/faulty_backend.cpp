#include "storage/faulty_backend.h"

#include <utility>

namespace keygraphs::storage {

namespace {

/// splitmix64 finalizer — the same counter-based deterministic stream the
/// client uses for backoff jitter: draw n of seed s never changes.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FaultyStorageBackend::FaultyStorageBackend(
    std::shared_ptr<StorageBackend> inner, FaultPlan plan)
    : inner_(std::move(inner)), plan_(plan) {
  if (inner_ == nullptr) {
    throw StorageError("faulty backend: no inner backend");
  }
}

double FaultyStorageBackend::draw() {
  // 53 high bits of the mixed counter -> uniform double in [0, 1).
  const std::uint64_t bits = mix64(plan_.seed * 0x9e3779b97f4a7c15ull +
                                   draws_++);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

const char* FaultyStorageBackend::name() const noexcept { return "faulty"; }

std::size_t FaultyStorageBackend::lanes() const noexcept {
  return inner_->lanes();
}

void FaultyStorageBackend::append(std::size_t lane, BytesView frame) {
  if (plan_.fail_after_appends != 0 &&
      appends_ok_ >= plan_.fail_after_appends) {
    ++injected_.append_errors;
    throw StorageError("injected: append failed, device full");
  }
  if (plan_.append_error_rate > 0.0 && draw() < plan_.append_error_rate) {
    ++injected_.append_errors;
    throw StorageError("injected: append failed, IO error");
  }
  if (plan_.short_write_rate > 0.0 && draw() < plan_.short_write_rate &&
      frame.size() > 1) {
    // Half the frame lands before the "device" errors out: the inner
    // journal now ends in a torn frame, exactly like a crash mid-write.
    ++injected_.short_writes;
    inner_->append(lane, frame.first(frame.size() / 2));
    throw StorageError("injected: short write, torn journal tail");
  }
  inner_->append(lane, frame);
  ++appends_ok_;
}

void FaultyStorageBackend::sync(std::size_t lane) {
  if (plan_.sync_error_rate > 0.0 && draw() < plan_.sync_error_rate) {
    ++injected_.sync_errors;
    throw StorageError("injected: fsync failed");
  }
  inner_->sync(lane);
}

Bytes FaultyStorageBackend::read_journal(std::size_t lane,
                                         std::size_t offset) const {
  return inner_->read_journal(lane, offset);
}

std::size_t FaultyStorageBackend::journal_size(std::size_t lane) const {
  return inner_->journal_size(lane);
}

void FaultyStorageBackend::truncate(std::size_t lane, std::size_t size) {
  inner_->truncate(lane, size);
}

void FaultyStorageBackend::compact(std::uint64_t epoch, BytesView snapshot) {
  inner_->compact(epoch, snapshot);
}

std::optional<Bytes> FaultyStorageBackend::read_snapshot() const {
  return inner_->read_snapshot();
}

std::uint64_t FaultyStorageBackend::snapshot_epoch() const {
  return inner_->snapshot_epoch();
}

std::uint64_t FaultyStorageBackend::generation() const {
  return inner_->generation();
}

std::shared_ptr<FaultyStorageBackend> make_faulty_backend(
    std::shared_ptr<StorageBackend> inner, FaultPlan plan) {
  return std::make_shared<FaultyStorageBackend>(std::move(inner), plan);
}

}  // namespace keygraphs::storage

// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant) for journal frame
// integrity. Not cryptographic — the journal trusts its own disk, and the
// sealed-digest field inside each record covers tamper-relevant bytes with
// a real digest. CRC is the right tool for detecting torn writes and bit
// rot cheaply on every append and every replay.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace keygraphs::storage {

[[nodiscard]] std::uint32_t crc32(BytesView data) noexcept;

/// Incremental form: feed `crc` from a previous call (start with 0).
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t crc,
                                         const std::uint8_t* data,
                                         std::size_t size) noexcept;

}  // namespace keygraphs::storage

// Mmap backend: appends are memcpy into a memory mapping; sync() is
// msync. Each (lane, generation) segment carries a 64-byte header whose
// `committed` field is the durable length — bytes past it are by
// definition torn and ignored by readers. sync() orders the flushes
// (data pages, then committed, then header page) so a crash can never
// expose a committed length covering unflushed data.
//
// Meta/snapshot handling is shared with the file backend via fs_util.h.
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <vector>

#include "storage/backend.h"
#include "storage/fs_util.h"

namespace keygraphs::storage {

namespace {

constexpr std::uint64_t kSegmentMagic = 0x504d474b504d474bull;  // "KGMPKGMP"
constexpr std::size_t kHeaderSize = 64;
constexpr std::size_t kInitialCapacity = 1u << 20;  // 1 MiB of data

[[noreturn]] void throw_errno(const std::string& what) {
  throw StorageError(what + ": " + std::strerror(errno));
}

void store_u64(std::uint8_t* at, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) at[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t load_u64(const std::uint8_t* at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(at[i]) << (8 * i);
  return v;
}

class MmapBackend final : public StorageBackend {
 public:
  MmapBackend(std::string dir, std::size_t lanes)
      : dir_(std::move(dir)), lanes_(lanes) {
    ensure_journal_dir(dir_);
    generation_ = read_generation(dir_);
  }

  ~MmapBackend() override {
    for (Lane& lane : lanes_) close_lane(lane);
  }

  [[nodiscard]] const char* name() const noexcept override { return "mmap"; }
  [[nodiscard]] std::size_t lanes() const noexcept override {
    return lanes_.size();
  }

  void append(std::size_t lane_index, BytesView frame) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    Lane& lane = lane_at(lane_index);
    open_lane(lane_index, lane);
    reserve(lane_index, lane, lane.committed + frame.size());
    std::memcpy(lane.base + kHeaderSize + lane.committed, frame.data(),
                frame.size());
    lane.committed += frame.size();
  }

  void sync(std::size_t lane_index) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    Lane& lane = lane_at(lane_index);
    if (lane.base == nullptr) return;  // nothing appended yet
    // Data pages first, committed-length last: the header must never
    // claim bytes the kernel has not yet flushed.
    if (::msync(lane.base, kHeaderSize + lane.committed, MS_SYNC) != 0) {
      throw_errno("msync data " + seg_path(lane_index, generation_));
    }
    store_u64(lane.base + 8, lane.committed);
    if (::msync(lane.base, kHeaderSize, MS_SYNC) != 0) {
      throw_errno("msync header " + seg_path(lane_index, generation_));
    }
  }

  [[nodiscard]] Bytes read_journal(std::size_t lane_index,
                                   std::size_t offset) const override {
    const std::lock_guard<std::mutex> lock(mutex_);
    const Lane& lane = lane_at(lane_index);
    if (lane.base != nullptr) {
      // Writer-side read: serve from the live mapping (committed tracks
      // appended-and-about-to-be-synced bytes).
      if (offset >= lane.committed) return {};
      const std::uint8_t* from = lane.base + kHeaderSize + offset;
      return Bytes(from, from + (lane.committed - offset));
    }
    // Reader-side: consult the current generation's file on disk and
    // honor its durable committed length.
    const auto data = read_file(seg_path(lane_index, read_generation(dir_)));
    if (!data || data->size() < kHeaderSize) return {};
    if (load_u64(data->data()) != kSegmentMagic) {
      throw JournalCorruptError("mmap segment lane " +
                                std::to_string(lane_index) + ": bad magic");
    }
    std::uint64_t committed = load_u64(data->data() + 8);
    if (committed > data->size() - kHeaderSize) {
      committed = data->size() - kHeaderSize;  // header ahead of truncation
    }
    if (offset >= committed) return {};
    const auto* from = data->data() + kHeaderSize + offset;
    return Bytes(from, from + (static_cast<std::size_t>(committed) - offset));
  }

  [[nodiscard]] std::size_t journal_size(std::size_t lane_index) const override {
    const std::lock_guard<std::mutex> lock(mutex_);
    const Lane& lane = lane_at(lane_index);
    if (lane.base != nullptr) return lane.committed;
    const auto data = read_file(seg_path(lane_index, read_generation(dir_)));
    if (!data || data->size() < kHeaderSize) return 0;
    return static_cast<std::size_t>(load_u64(data->data() + 8));
  }

  void truncate(std::size_t lane_index, std::size_t size) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    Lane& lane = lane_at(lane_index);
    open_lane(lane_index, lane);
    if (size >= lane.committed) return;
    lane.committed = size;
    store_u64(lane.base + 8, lane.committed);
    if (::msync(lane.base, kHeaderSize, MS_SYNC) != 0) {
      throw_errno("msync header " + seg_path(lane_index, generation_));
    }
  }

  void compact(std::uint64_t epoch, BytesView snapshot) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    write_snapshot_file(dir_, epoch, snapshot);  // before the meta bump
    const std::uint64_t next = generation_ + 1;
    write_generation(dir_, next);
    for (Lane& lane : lanes_) close_lane(lane);
    generation_ = next;
    remove_stale_segments(dir_, next);
  }

  [[nodiscard]] std::optional<Bytes> read_snapshot() const override {
    auto snapshot = read_snapshot_file(dir_);
    if (!snapshot) return std::nullopt;
    return std::move(snapshot->second);
  }

  [[nodiscard]] std::uint64_t snapshot_epoch() const override {
    const auto snapshot = read_snapshot_file(dir_);
    return snapshot ? snapshot->first : 0;
  }

  [[nodiscard]] std::uint64_t generation() const override {
    return read_generation(dir_);
  }

 private:
  struct Lane {
    int fd = -1;
    std::uint8_t* base = nullptr;  // header + data mapping, or null
    std::size_t capacity = 0;      // mapped data bytes past the header
    std::size_t committed = 0;
  };

  [[nodiscard]] Lane& lane_at(std::size_t lane) {
    if (lane >= lanes_.size()) {
      throw StorageError("mmap backend: lane " + std::to_string(lane) +
                         " out of range");
    }
    return lanes_[lane];
  }
  [[nodiscard]] const Lane& lane_at(std::size_t lane) const {
    return const_cast<MmapBackend*>(this)->lane_at(lane);
  }

  [[nodiscard]] std::string seg_path(std::size_t lane,
                                     std::uint64_t generation) const {
    return segment_path(dir_, lane, generation, ".map");
  }

  void close_lane(Lane& lane) {
    if (lane.base != nullptr) {
      ::munmap(lane.base, kHeaderSize + lane.capacity);
      lane.base = nullptr;
    }
    if (lane.fd >= 0) {
      ::close(lane.fd);
      lane.fd = -1;
    }
    lane.capacity = 0;
    lane.committed = 0;
  }

  void open_lane(std::size_t lane_index, Lane& lane) {
    if (lane.base != nullptr) return;
    const std::string path = seg_path(lane_index, generation_);
    lane.fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (lane.fd < 0) throw_errno("open " + path);
    struct stat st = {};
    if (::fstat(lane.fd, &st) != 0) throw_errno("fstat " + path);
    const bool fresh = st.st_size == 0;
    std::size_t file_size = static_cast<std::size_t>(st.st_size);
    if (file_size < kHeaderSize + kInitialCapacity) {
      file_size = kHeaderSize + kInitialCapacity;
      if (::ftruncate(lane.fd, static_cast<off_t>(file_size)) != 0) {
        throw_errno("ftruncate " + path);
      }
    }
    void* base = ::mmap(nullptr, file_size, PROT_READ | PROT_WRITE,
                        MAP_SHARED, lane.fd, 0);
    if (base == MAP_FAILED) throw_errno("mmap " + path);
    lane.base = static_cast<std::uint8_t*>(base);
    lane.capacity = file_size - kHeaderSize;
    if (fresh) {
      store_u64(lane.base, kSegmentMagic);
      store_u64(lane.base + 8, 0);
      lane.committed = 0;
    } else {
      if (load_u64(lane.base) != kSegmentMagic) {
        throw JournalCorruptError("mmap segment " + path + ": bad magic");
      }
      lane.committed = static_cast<std::size_t>(load_u64(lane.base + 8));
      if (lane.committed > lane.capacity) {
        throw JournalCorruptError("mmap segment " + path +
                                  ": committed length past end of file");
      }
    }
  }

  void reserve(std::size_t lane_index, Lane& lane, std::size_t needed) {
    if (needed <= lane.capacity) return;
    std::size_t next = lane.capacity == 0 ? kInitialCapacity : lane.capacity;
    while (next < needed) next *= 2;
    const std::string path = seg_path(lane_index, generation_);
    if (::munmap(lane.base, kHeaderSize + lane.capacity) != 0) {
      throw_errno("munmap " + path);
    }
    lane.base = nullptr;
    if (::ftruncate(lane.fd, static_cast<off_t>(kHeaderSize + next)) != 0) {
      throw_errno("ftruncate " + path);
    }
    void* base = ::mmap(nullptr, kHeaderSize + next, PROT_READ | PROT_WRITE,
                        MAP_SHARED, lane.fd, 0);
    if (base == MAP_FAILED) throw_errno("mmap (grow) " + path);
    lane.base = static_cast<std::uint8_t*>(base);
    lane.capacity = next;
  }

  const std::string dir_;
  mutable std::mutex mutex_;
  std::uint64_t generation_ = 0;  // writer's cached view of meta
  std::vector<Lane> lanes_;
};

}  // namespace

std::shared_ptr<StorageBackend> make_mmap_backend(const std::string& dir,
                                                  std::size_t lanes) {
  return std::make_shared<MmapBackend>(dir, lanes == 0 ? 1 : lanes);
}

}  // namespace keygraphs::storage

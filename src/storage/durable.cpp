#include "storage/durable.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "telemetry/metrics.h"

namespace keygraphs::storage {

namespace {

std::uint64_t mono_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct StorageMetrics {
  telemetry::Histogram& append_ns = telemetry::Registry::global().histogram(
      "storage.append_ns", "journal frame append latency (ns)");
  telemetry::Histogram& fsync_ns = telemetry::Registry::global().histogram(
      "storage.fsync_ns", "journal sync-to-durable latency (ns)");
  telemetry::Counter& records = telemetry::Registry::global().counter(
      "storage.records", "journal records committed");
  telemetry::Counter& journal_bytes = telemetry::Registry::global().counter(
      "storage.journal_bytes", "journal frame bytes appended");
  telemetry::Gauge& snapshot_bytes = telemetry::Registry::global().gauge(
      "storage.snapshot_bytes", "size of the last compacted snapshot");
  telemetry::Counter& snapshots = telemetry::Registry::global().counter(
      "storage.snapshots", "compactions performed");
};

StorageMetrics& storage_metrics() {
  static StorageMetrics metrics;
  return metrics;
}

/// Merge per-lane record batches into global commit order.
void sort_by_sequence(std::vector<JournalRecord>& records) {
  std::sort(records.begin(), records.end(),
            [](const JournalRecord& a, const JournalRecord& b) {
              return a.sequence < b.sequence;
            });
}

}  // namespace

DurableStore::DurableStore(std::shared_ptr<StorageBackend> backend,
                           std::uint32_t snapshot_interval)
    : backend_(std::move(backend)), snapshot_interval_(snapshot_interval) {
  if (backend_ == nullptr) {
    throw StorageError("DurableStore: null backend");
  }
  // Lenient continuation scan: pick up the sequence counter and the
  // ops-since-snapshot count from whatever complete frames exist. No
  // mutation and no throwing here — a standby constructs a store over a
  // backend the primary is actively writing, and real corruption is
  // load()'s job to report.
  std::uint64_t max_sequence = 0;
  std::uint64_t ops = 0;
  for (std::size_t lane = 0; lane < backend_->lanes(); ++lane) {
    try {
      const FrameScan scan = scan_frames(backend_->read_journal(lane, 0));
      for (const JournalRecord& record : scan.records) {
        max_sequence = std::max(max_sequence, record.sequence);
        ++ops;
      }
    } catch (const StorageError&) {
      // Deferred to load().
    }
  }
  next_sequence_ = max_sequence + 1;
  ops_since_snapshot_ = ops;
}

void DurableStore::append(JournalRecord& record) {
  static StorageMetrics& metrics = storage_metrics();
  const std::lock_guard<std::mutex> lock(mutex_);
  record.sequence = next_sequence_++;
  const Bytes frame = record.encode_frame();
  const std::size_t lane = record.shard;
  const std::uint64_t t0 = mono_ns();
  backend_->append(lane, frame);
  const std::uint64_t t1 = mono_ns();
  backend_->sync(lane);
  const std::uint64_t t2 = mono_ns();
  ++ops_since_snapshot_;
  if (telemetry::enabled()) {
    metrics.append_ns.record(t1 - t0);
    metrics.fsync_ns.record(t2 - t1);
    metrics.records.add(1);
    metrics.journal_bytes.add(frame.size());
  }
}

bool DurableStore::snapshot_due() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_interval_ > 0 && backend_->lanes() == 1 &&
         ops_since_snapshot_ >= snapshot_interval_;
}

void DurableStore::compact(std::uint64_t epoch, BytesView snapshot) {
  static StorageMetrics& metrics = storage_metrics();
  const std::lock_guard<std::mutex> lock(mutex_);
  backend_->compact(epoch, snapshot);
  ops_since_snapshot_ = 0;
  if (telemetry::enabled()) {
    metrics.snapshot_bytes.set(static_cast<std::int64_t>(snapshot.size()));
    metrics.snapshots.add(1);
  }
}

RecoveredLog DurableStore::load(const RecoveryOptions& options) {
  const std::lock_guard<std::mutex> lock(mutex_);
  RecoveredLog log;
  log.snapshot = backend_->read_snapshot();
  log.snapshot_epoch = log.snapshot ? backend_->snapshot_epoch() : 0;

  for (std::size_t lane = 0; lane < backend_->lanes(); ++lane) {
    const Bytes stream = backend_->read_journal(lane, 0);
    const FrameScan scan = scan_frames(stream);
    if (scan.torn_tail) {
      if (!options.tolerate_torn_tail) {
        throw JournalTruncatedError(
            "journal lane " + std::to_string(lane) + ": torn frame after " +
            std::to_string(scan.consumed) + " of " +
            std::to_string(stream.size()) + " bytes");
      }
      // The torn record's datagrams were never delivered (append + sync
      // happen before dispatch), so cutting the tail loses nothing a
      // client ever saw — and new appends must not land after torn bytes.
      backend_->truncate(lane, scan.consumed);
    }
    log.records.insert(log.records.end(), scan.records.begin(),
                       scan.records.end());
  }
  sort_by_sequence(log.records);

  // Drop records the snapshot already covers (compaction-crash overlap),
  // then check invariants on what remains: strictly increasing sequences
  // and contiguous epochs from the snapshot.
  std::vector<JournalRecord> kept;
  kept.reserve(log.records.size());
  std::uint64_t last_sequence = 0;
  std::uint64_t expected_epoch = log.snapshot_epoch + 1;
  for (JournalRecord& record : log.records) {
    if (record.sequence <= last_sequence) {
      throw JournalCorruptError(
          "journal: commit sequence " + std::to_string(record.sequence) +
          " repeats or goes backwards");
    }
    last_sequence = record.sequence;
    if (log.snapshot && record.epoch <= log.snapshot_epoch) continue;
    if (record.epoch != 0) {  // preload records advance no epoch
      if (record.epoch != expected_epoch) {
        throw EpochGapError("journal: expected epoch " +
                            std::to_string(expected_epoch) + ", found " +
                            std::to_string(record.epoch) + " (sequence " +
                            std::to_string(record.sequence) + ")");
      }
      ++expected_epoch;
    }
    kept.push_back(std::move(record));
  }
  log.records = std::move(kept);

  next_sequence_ = last_sequence + 1;
  ops_since_snapshot_ = log.records.size();
  return log;
}

Tail DurableStore::tail(Cursor& cursor) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Tail result;
  const std::uint64_t generation = backend_->generation();
  if (cursor.generation != generation) {
    // Compacted (or first call): re-anchor on the snapshot and restart
    // the byte offsets. Sequences are global across generations, so
    // next_sequence stays meaningful — but a fresh cursor accepts the
    // first record it sees.
    cursor.generation = generation;
    cursor.offsets.assign(backend_->lanes(), 0);
    cursor.pending.clear();
    result.snapshot = backend_->read_snapshot();
    result.snapshot_epoch = result.snapshot ? backend_->snapshot_epoch() : 0;
  }
  if (cursor.offsets.size() != backend_->lanes()) {
    cursor.offsets.assign(backend_->lanes(), 0);
  }

  std::vector<JournalRecord> fresh = std::move(cursor.pending);
  cursor.pending.clear();
  for (std::size_t lane = 0; lane < backend_->lanes(); ++lane) {
    const Bytes stream = backend_->read_journal(lane, cursor.offsets[lane]);
    // torn_tail here just means "a writer is mid-append"; the unconsumed
    // bytes stay at the cursor for the next call.
    const FrameScan scan = scan_frames(stream, cursor.offsets[lane]);
    cursor.offsets[lane] += scan.consumed;
    fresh.insert(fresh.end(), scan.records.begin(), scan.records.end());
  }
  sort_by_sequence(fresh);

  // Emit only the contiguous sequence prefix; records whose predecessors
  // (in another lane) have not surfaced yet wait in cursor.pending.
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    JournalRecord& record = fresh[i];
    if (cursor.next_sequence != 0 && record.sequence < cursor.next_sequence) {
      continue;  // already emitted (re-read after a re-anchor)
    }
    if (cursor.next_sequence != 0 && record.sequence != cursor.next_sequence) {
      cursor.pending.assign(std::make_move_iterator(fresh.begin() +
                                                    static_cast<std::ptrdiff_t>(i)),
                            std::make_move_iterator(fresh.end()));
      break;
    }
    cursor.next_sequence = record.sequence + 1;
    result.records.push_back(std::move(record));
  }
  // Keep this store's own counters ahead of everything observed: a
  // standby promoted over this instance must append with fresh sequences.
  if (cursor.next_sequence > next_sequence_) {
    next_sequence_ = cursor.next_sequence;
    ops_since_snapshot_ += result.records.size();
  }
  return result;
}

void DurableStore::drop_tail_after(const Cursor& cursor) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t lane = 0;
       lane < backend_->lanes() && lane < cursor.offsets.size(); ++lane) {
    if (backend_->journal_size(lane) > cursor.offsets[lane]) {
      backend_->truncate(lane, cursor.offsets[lane]);
    }
  }
}

}  // namespace keygraphs::storage

#include "storage/crc32.h"

#include <array>

namespace keygraphs::storage {

namespace {

constexpr std::uint32_t kPolynomial = 0xedb88320u;  // reflected IEEE

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPolynomial : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, const std::uint8_t* data,
                           std::size_t size) noexcept {
  crc = ~crc;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t crc32(BytesView data) noexcept {
  return crc32_update(0, data.data(), data.size());
}

}  // namespace keygraphs::storage

// Typed failure modes of the durable-state subsystem. Recovery must never
// load partial state silently: every way a journal or snapshot can be bad
// maps to a distinct exception so callers (daemon boot, standby promotion,
// tests) can tell operator errors from corruption from divergence.
#pragma once

#include "common/error.h"

namespace keygraphs::storage {

/// Root of storage failures: backend IO errors, unusable journal
/// directories, misconfiguration.
class StorageError : public Error {
 public:
  using Error::Error;
};

/// A complete frame failed validation (bad magic, CRC mismatch, malformed
/// payload, sequence regression) somewhere other than the tail — the
/// segment is damaged, not merely torn by a crash.
class JournalCorruptError : public StorageError {
 public:
  using StorageError::StorageError;
};

/// The journal ends mid-frame. The strict default treats this as fatal;
/// RecoveryOptions::tolerate_torn_tail lets a crash-recovering daemon drop
/// the partial record instead (safe because append+fsync precedes
/// delivery: a torn record was never released to clients).
class JournalTruncatedError : public StorageError {
 public:
  using StorageError::StorageError;
};

/// The snapshot epoch and the journal records do not form one contiguous
/// epoch stream (a segment was lost, or snapshot and journal come from
/// different histories). Loading would silently skip rekeys.
class EpochGapError : public StorageError {
 public:
  using StorageError::StorageError;
};

/// A replayed operation did not reproduce the recorded outcome (sealed
/// digest mismatch, leftover rng tape, admission result change): the
/// recovering server's configuration or code diverges from the writer's.
/// The server's state is unusable after this — construct a fresh one.
class ReplayDivergenceError : public StorageError {
 public:
  using StorageError::StorageError;
};

}  // namespace keygraphs::storage

#include "storage/record.h"

#include <string>

#include "common/io.h"
#include "storage/crc32.h"

namespace keygraphs::storage {

namespace {

void write_users(ByteWriter& writer, const std::vector<std::uint64_t>& users) {
  writer.u32(static_cast<std::uint32_t>(users.size()));
  for (const std::uint64_t user : users) writer.u64(user);
}

std::vector<std::uint64_t> read_users(ByteReader& reader) {
  const std::uint32_t count = reader.u32();
  std::vector<std::uint64_t> users;
  users.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) users.push_back(reader.u64());
  return users;
}

}  // namespace

Bytes JournalRecord::encode_payload() const {
  ByteWriter writer;
  writer.u64(sequence);
  writer.u64(epoch);
  writer.u8(static_cast<std::uint8_t>(kind));
  writer.u32(shard);
  writer.u64(timestamp_us);
  write_users(writer, joins);
  write_users(writer, leaves);
  writer.var_bytes(rng_tape);
  writer.var_bytes(root_tape);
  writer.var_bytes(sealed_digest);
  return writer.take();
}

JournalRecord JournalRecord::decode_payload(BytesView payload) {
  try {
    ByteReader reader(payload);
    JournalRecord record;
    record.sequence = reader.u64();
    record.epoch = reader.u64();
    record.kind = static_cast<OpKind>(reader.u8());
    record.shard = reader.u32();
    record.timestamp_us = reader.u64();
    record.joins = read_users(reader);
    record.leaves = read_users(reader);
    record.rng_tape = reader.var_bytes();
    record.root_tape = reader.var_bytes();
    record.sealed_digest = reader.var_bytes();
    reader.expect_done();
    if (record.kind != OpKind::kJoin && record.kind != OpKind::kLeave &&
        record.kind != OpKind::kBatch && record.kind != OpKind::kPreload) {
      throw JournalCorruptError(
          "journal record: unknown op kind " +
          std::to_string(static_cast<unsigned>(record.kind)));
    }
    return record;
  } catch (const ParseError& error) {
    throw JournalCorruptError(std::string("journal record payload: ") +
                              error.what());
  }
}

Bytes JournalRecord::encode_frame() const {
  const Bytes payload = encode_payload();
  ByteWriter writer;
  writer.u32(kFrameMagic);
  writer.u32(static_cast<std::uint32_t>(payload.size()));
  writer.u32(crc32(payload));
  writer.raw(payload);
  return writer.take();
}

FrameScan scan_frames(BytesView stream, std::size_t base_offset) {
  FrameScan scan;
  std::size_t pos = 0;
  while (pos < stream.size()) {
    const std::size_t at = base_offset + pos;
    if (stream.size() - pos < kFrameHeaderSize) {
      scan.torn_tail = true;
      break;
    }
    const auto read_u32 = [&](std::size_t offset) {
      std::uint32_t v = 0;
      for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(stream[pos + offset +
                                               static_cast<std::size_t>(i)])
             << (8 * i);
      }
      return v;
    };
    const std::uint32_t magic = read_u32(0);
    if (magic != kFrameMagic) {
      throw JournalCorruptError("journal frame at byte " + std::to_string(at) +
                                ": bad magic");
    }
    const std::uint32_t length = read_u32(4);
    const std::uint32_t crc = read_u32(8);
    if (length > kMaxFramePayload) {
      throw JournalCorruptError("journal frame at byte " + std::to_string(at) +
                                ": implausible length " +
                                std::to_string(length));
    }
    if (stream.size() - pos - kFrameHeaderSize < length) {
      scan.torn_tail = true;
      break;
    }
    const BytesView payload = stream.subspan(pos + kFrameHeaderSize, length);
    if (crc32(payload) != crc) {
      throw JournalCorruptError("journal frame at byte " + std::to_string(at) +
                                ": CRC mismatch");
    }
    scan.records.push_back(JournalRecord::decode_payload(payload));
    pos += kFrameHeaderSize + length;
    scan.consumed = pos;
  }
  return scan;
}

}  // namespace keygraphs::storage

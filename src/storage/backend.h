// StorageBackend: the pluggable persistence layer under the DurableStore.
//
// A backend owns two things per journal "lane" (one lane per shard; the
// unsharded server uses lane 0) — an append-only byte stream of CRC-framed
// journal records — plus at most one compacted snapshot blob and a
// generation counter. Compaction atomically replaces the snapshot and
// truncates every lane; the generation counter is how a tailing reader
// (the hot standby) detects that its byte offsets were invalidated and it
// must re-anchor on the new snapshot.
//
// Three implementations (ROADMAP's multi-backend factory pattern):
//   memory — RAM only; shareable between a primary and an in-process
//            standby via the shared_ptr, and the unit-test workhorse.
//   file   — one fsync'd segment file per (lane, generation) plus an
//            atomically-replaced snapshot file. Crash-durable.
//   mmap   — appends go through a memory mapping with a committed-length
//            header (bytes past `committed` are by definition torn and
//            ignored), msync'd on sync(). Snapshot/meta reuse the file
//            path. Trades write syscalls for mapping maintenance.
//
// Durability contract: append() makes bytes *visible* to readers of this
// backend; sync() makes everything appended to the lane so far *durable*.
// The DurableStore calls sync after every committed record, before the
// datagrams leave the transport.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "storage/errors.h"

namespace keygraphs::storage {

/// Which backend a server journals through. Spec key `storage`.
enum class Kind : std::uint8_t {
  kNone = 0,  ///< durability disabled (the pre-PR-8 behavior)
  kMemory = 1,
  kFile = 2,
  kMmap = 3,
};

[[nodiscard]] const char* kind_name(Kind kind) noexcept;

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;
  [[nodiscard]] virtual std::size_t lanes() const noexcept = 0;

  /// Appends frame bytes to `lane`'s journal (visible immediately, durable
  /// after sync()).
  virtual void append(std::size_t lane, BytesView frame) = 0;
  /// Flushes `lane`'s appended bytes to stable storage.
  virtual void sync(std::size_t lane) = 0;
  /// The lane's journal bytes from byte `offset` to the committed end.
  [[nodiscard]] virtual Bytes read_journal(std::size_t lane,
                                           std::size_t offset) const = 0;
  [[nodiscard]] virtual std::size_t journal_size(std::size_t lane) const = 0;
  /// Cuts the lane's journal back to `size` bytes. Recovery uses this to
  /// drop a tolerated torn tail before new appends land after it.
  virtual void truncate(std::size_t lane, std::size_t size) = 0;

  /// Compaction: durably replaces the snapshot with `snapshot` (state as
  /// of `epoch`), advances the generation, and truncates every journal
  /// lane. Readers at an older generation must restore the snapshot and
  /// restart their offsets at zero.
  virtual void compact(std::uint64_t epoch, BytesView snapshot) = 0;
  [[nodiscard]] virtual std::optional<Bytes> read_snapshot() const = 0;
  /// Epoch of the stored snapshot; 0 when there is none.
  [[nodiscard]] virtual std::uint64_t snapshot_epoch() const = 0;
  [[nodiscard]] virtual std::uint64_t generation() const = 0;
};

/// Journal-backend selection carried in ServerConfig. `backend` (when set)
/// wins over `kind` — tests inject a shared memory backend so a primary
/// and an in-process standby see one journal; everything else builds from
/// kind + journal_dir via make_backend().
struct StorageConfig {
  Kind kind = Kind::kNone;
  /// Directory for file/mmap backends (created if absent). Spec key
  /// `journal_dir`; required for those kinds.
  std::string journal_dir;
  /// Committed records between compacted snapshots; 0 = never compact.
  /// Spec key `snapshot_interval`. Ignored by the sharded server (its
  /// recovery is journal-only; see docs/ARCHITECTURE.md).
  std::uint32_t snapshot_interval = 1024;
  std::shared_ptr<StorageBackend> backend;

  [[nodiscard]] bool enabled() const noexcept {
    return backend != nullptr || kind != Kind::kNone;
  }
};

/// Builds the configured backend with `lanes` journal lanes. Throws
/// StorageError for kNone, for a missing journal_dir on the disk-backed
/// kinds, or when the directory cannot be created/written.
[[nodiscard]] std::shared_ptr<StorageBackend> make_backend(
    const StorageConfig& config, std::size_t lanes);

/// The RAM implementation, exposed so tests can share one instance between
/// a primary and a standby server.
[[nodiscard]] std::shared_ptr<StorageBackend> make_memory_backend(
    std::size_t lanes);
[[nodiscard]] std::shared_ptr<StorageBackend> make_file_backend(
    const std::string& dir, std::size_t lanes);
[[nodiscard]] std::shared_ptr<StorageBackend> make_mmap_backend(
    const std::string& dir, std::size_t lanes);

}  // namespace keygraphs::storage

// Filesystem plumbing shared by the file and mmap backends: directory
// preparation, atomic (tmp + rename + fsync) replacement, and the two
// small self-describing metadata files —
//
//   meta          u32 magic 'KGMT' | u64 generation | u32 crc
//   snapshot.bin  u32 magic 'KGSN' | u64 epoch | u32 crc(payload) | payload
//
// The snapshot file carries its own epoch (rather than trusting meta) so a
// crash between the snapshot rename and the meta write leaves a readable,
// consistent pair: recovery restores the newer snapshot and skips journal
// records at or below its epoch.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "common/bytes.h"
#include "storage/errors.h"

namespace keygraphs::storage {

/// Creates `dir` (and parents) if absent and verifies it is writable.
/// Throws StorageError otherwise.
void ensure_journal_dir(const std::string& dir);

/// Whole-file read; nullopt when the file does not exist.
[[nodiscard]] std::optional<Bytes> read_file(const std::string& path);

/// Durably replaces `dir`/`name`: write `contents` to a tmp file, fsync,
/// rename over the target, fsync the directory.
void atomic_replace(const std::string& dir, const std::string& name,
                    BytesView contents);

void fsync_path(const std::string& path);

/// Generation counter persisted in `dir`/meta; 0 when absent.
[[nodiscard]] std::uint64_t read_generation(const std::string& dir);
void write_generation(const std::string& dir, std::uint64_t generation);

/// Snapshot blob persisted in `dir`/snapshot.bin as {epoch, payload};
/// nullopt when absent. Throws JournalCorruptError on CRC/format damage.
[[nodiscard]] std::optional<std::pair<std::uint64_t, Bytes>>
read_snapshot_file(const std::string& dir);
void write_snapshot_file(const std::string& dir, std::uint64_t epoch,
                         BytesView payload);

/// `dir`/wal.`lane`.g`generation` + `suffix` — the per-(lane, generation)
/// journal segment naming both disk backends share.
[[nodiscard]] std::string segment_path(const std::string& dir,
                                       std::size_t lane,
                                       std::uint64_t generation,
                                       const char* suffix);

/// Deletes journal segments in `dir` whose embedded generation differs
/// from `keep` (stale leftovers of an interrupted compaction).
void remove_stale_segments(const std::string& dir, std::uint64_t keep);

}  // namespace keygraphs::storage

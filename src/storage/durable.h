// DurableStore: the write-ahead journal of committed rekey operations.
//
// Sits between the servers and a StorageBackend. Appends assign a global
// commit sequence under the store mutex — per-shard lanes stay
// independent on disk, but the sequence gives recovery a total order to
// merge them back into. Every append is followed by a backend sync, so a
// record is durable before the server releases the operation's dispatch
// ticket (write-ahead with respect to the datagrams leaving the
// transport).
//
// Three consumers:
//   append/compact — the live server's commit hook.
//   load()         — boot-time recovery: snapshot + ordered records, with
//                    strict typed-error checking (CRC, torn tail, epoch
//                    contiguity) so a damaged journal fails loudly rather
//                    than loading partial state.
//   tail(Cursor&)  — the hot standby's incremental feed: returns newly
//                    durable records since the cursor, re-anchoring on the
//                    snapshot when a compaction bumps the generation.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "storage/backend.h"
#include "storage/record.h"

namespace keygraphs::storage {

struct RecoveryOptions {
  /// A torn final frame (crash mid-append) normally throws
  /// JournalTruncatedError so tests and operators see exactly what was
  /// lost. The daemon recovers with this set: the torn record's datagrams
  /// were never sent (append + sync precede delivery), so dropping the
  /// tail is safe, and the store truncates it away before new appends.
  bool tolerate_torn_tail = false;
  /// Re-verify each replayed op's sealed digest against the journal.
  /// Mismatch -> ReplayDivergenceError. (Checked by the server's replay,
  /// not by load() itself; carried here so call sites configure recovery
  /// in one place.)
  bool verify_digests = true;
};

/// What load() hands the server: the snapshot (if any) to restore first,
/// then the records to replay in sequence order.
struct RecoveredLog {
  std::optional<Bytes> snapshot;
  std::uint64_t snapshot_epoch = 0;
  std::vector<JournalRecord> records;
};

/// Standby tailing position. Default-constructed = "never read anything";
/// the first tail() anchors it to the backend's current generation.
struct Cursor {
  std::uint64_t generation = ~0ull;
  std::vector<std::size_t> offsets;  // per-lane journal byte offsets
  std::uint64_t next_sequence = 0;   // 0 = accept the first record seen
  /// Records read but held back because an earlier sequence from another
  /// lane has not surfaced yet (multi-lane appends race the reads).
  std::vector<JournalRecord> pending;
};

/// One tail() step. When `snapshot` is set the journal was compacted under
/// the reader: restore the snapshot (state as of snapshot_epoch) before
/// applying `records`.
struct Tail {
  std::optional<Bytes> snapshot;
  std::uint64_t snapshot_epoch = 0;
  std::vector<JournalRecord> records;
};

class DurableStore {
 public:
  /// Takes over an existing backend; scans it (leniently — no mutation,
  /// corruption deferred to load()) to continue the sequence counter.
  DurableStore(std::shared_ptr<StorageBackend> backend,
               std::uint32_t snapshot_interval);

  [[nodiscard]] StorageBackend& backend() noexcept { return *backend_; }
  [[nodiscard]] std::shared_ptr<StorageBackend> backend_ptr() const noexcept {
    return backend_;
  }

  /// Assigns the record's commit sequence, appends its frame to lane
  /// `record.shard`, and syncs that lane. On return the record is durable.
  void append(JournalRecord& record);

  /// True when snapshot_interval records have been committed since the
  /// last compaction (and compaction applies: single-lane journals only —
  /// the sharded server has no cross-shard snapshot and recovers from the
  /// journal alone).
  [[nodiscard]] bool snapshot_due() const;

  /// Durably replaces the snapshot with `snapshot` (state as of `epoch`)
  /// and truncates the journal. Tailing readers re-anchor via generation.
  void compact(std::uint64_t epoch, BytesView snapshot);

  /// Full recovery read: snapshot + every later record, lanes merged by
  /// sequence. Throws JournalCorruptError / JournalTruncatedError /
  /// EpochGapError as appropriate. With tolerate_torn_tail the torn bytes
  /// are truncated off the backend so later appends start clean.
  [[nodiscard]] RecoveredLog load(const RecoveryOptions& options);

  /// Incremental read since `cursor` (advanced in place). Never throws for
  /// an incomplete final frame — a live writer may be mid-append; the
  /// bytes stay unconsumed for the next call. Corrupt complete frames
  /// still throw JournalCorruptError. Advances this store's own sequence
  /// counter past everything observed, so a standby promoted over this
  /// store appends with fresh sequences.
  [[nodiscard]] Tail tail(Cursor& cursor);

  /// Cuts every lane back to the cursor's consumed offset, dropping a
  /// dead writer's torn tail so post-promotion appends start on a frame
  /// boundary. Call only once the writer is known dead.
  void drop_tail_after(const Cursor& cursor);

 private:
  std::shared_ptr<StorageBackend> backend_;
  std::uint32_t snapshot_interval_;
  mutable std::mutex mutex_;
  std::uint64_t next_sequence_ = 1;
  std::uint64_t ops_since_snapshot_ = 0;
};

}  // namespace keygraphs::storage

// TCP transport with length-prefixed framing.
//
// The paper assumes "a reliable message delivery system, for both unicast
// and multicast". The UDP transport mirrors the prototype's wire choice;
// this transport provides the reliability the protocol actually assumes:
// each datagram travels as a u32 length prefix + payload over a stream
// socket, so rekey messages can neither be lost nor reordered per client.
// Subgroup multicast is emulated by unicast fan-out, as over UDP.
#pragma once

#include <optional>
#include <unordered_map>

#include "common/bytes.h"
#include "transport/address.h"
#include "transport/transport.h"

namespace keygraphs::transport {

/// A connected stream carrying framed messages. Move-only RAII.
class TcpConnection {
 public:
  /// Connects to a listener. Throws TransportError on failure.
  static TcpConnection connect(const Address& to);

  TcpConnection(TcpConnection&& other) noexcept;
  TcpConnection& operator=(TcpConnection&& other) noexcept;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;
  ~TcpConnection();

  /// Sends one framed message (u32 length + payload). Blocking; throws on
  /// any short write (the peer vanished).
  void send(BytesView message);

  /// Receives the next framed message. Blocks up to `timeout_ms` for the
  /// *first* byte (-1 = forever), then reads the frame to completion.
  /// Returns nullopt on timeout or orderly peer shutdown; throws on
  /// protocol violations (oversized frames) and socket errors.
  std::optional<Bytes> receive(int timeout_ms);

  [[nodiscard]] Address local_address() const;
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// Switches the socket's non-blocking flag. send() stays logically
  /// blocking either way — on EAGAIN it waits for POLLOUT with a bounded
  /// stall budget (then throws TransportError and counts
  /// transport.tcp.send_errors). Exposed so tests can drive send()
  /// through that retry path against a peer that stops reading.
  void set_nonblocking(bool on = true);

  /// Frames above this size are treated as a protocol violation.
  static constexpr std::uint32_t kMaxFrame = 1u << 24;  // 16 MiB

 private:
  friend class TcpListener;
  explicit TcpConnection(int fd) : fd_(fd) {}

  int fd_ = -1;
};

/// A listening socket on loopback. Move-only RAII.
class TcpListener {
 public:
  /// Binds and listens on 127.0.0.1:port (0 = ephemeral).
  explicit TcpListener(std::uint16_t port = 0);

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  ~TcpListener();

  /// Accepts one connection; nullopt on timeout.
  std::optional<TcpConnection> accept(int timeout_ms);

  [[nodiscard]] Address local_address() const;

 private:
  int fd_ = -1;
};

/// ServerTransport over per-user TCP connections: reliable unicast, with
/// subgroup multicast emulated by fan-out. Owns the accepted connections.
class TcpServerTransport final : public ServerTransport {
 public:
  /// Associates a user with an accepted connection (typically after the
  /// join request arrives on it). Replaces any previous connection.
  void register_user(UserId user, TcpConnection connection);
  void unregister_user(UserId user);

  /// Access the registered connection (e.g. to read further requests).
  [[nodiscard]] TcpConnection* connection_of(UserId user);

  void deliver(const rekey::Recipient& to, BytesView message,
               const Resolver& resolve) override;

  [[nodiscard]] std::size_t messages_sent() const noexcept {
    return messages_sent_;
  }

 private:
  void send_to_user(UserId user, BytesView message);

  std::unordered_map<UserId, TcpConnection> connections_;
  std::size_t messages_sent_ = 0;
};

}  // namespace keygraphs::transport

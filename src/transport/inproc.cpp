#include "transport/inproc.h"

#include "common/error.h"
#include "telemetry/metrics.h"

namespace keygraphs::transport {

void InProcNetwork::attach_server(ServerHandler handler) {
  server_handler_ = std::move(handler);
}

void InProcNetwork::attach_client(UserId user, ClientHandler handler) {
  if (!clients_.emplace(user, std::move(handler)).second) {
    throw TransportError("InProcNetwork: client already attached");
  }
}

void InProcNetwork::detach_client(UserId user) {
  auto it = subscriptions_.find(user);
  if (it != subscriptions_.end()) {
    for (KeyId key : it->second) {
      auto group = subgroups_.find(key);
      if (group != subgroups_.end()) {
        group->second.erase(user);
        if (group->second.empty()) subgroups_.erase(group);
      }
    }
    subscriptions_.erase(it);
  }
  clients_.erase(user);
}

void InProcNetwork::subscribe(UserId user, KeyId key) {
  if (!clients_.contains(user)) {
    throw TransportError("InProcNetwork: subscribe before attach");
  }
  subgroups_[key].insert(user);
  subscriptions_[user].insert(key);
}

void InProcNetwork::unsubscribe(UserId user, KeyId key) {
  auto group = subgroups_.find(key);
  if (group != subgroups_.end()) {
    group->second.erase(user);
    if (group->second.empty()) subgroups_.erase(group);
  }
  auto subs = subscriptions_.find(user);
  if (subs != subscriptions_.end()) subs->second.erase(key);
}

void InProcNetwork::resubscribe(UserId user,
                                const std::vector<KeyId>& keys) {
  // Drop stale subscriptions, add new ones; no-ops stay untouched.
  auto& current = subscriptions_[user];
  std::unordered_set<KeyId> wanted(keys.begin(), keys.end());
  for (auto it = current.begin(); it != current.end();) {
    if (!wanted.contains(*it)) {
      auto group = subgroups_.find(*it);
      if (group != subgroups_.end()) {
        group->second.erase(user);
        if (group->second.empty()) subgroups_.erase(group);
      }
      it = current.erase(it);
    } else {
      ++it;
    }
  }
  for (KeyId key : wanted) {
    if (current.insert(key).second) subgroups_[key].insert(user);
  }
}

void InProcNetwork::send_to_server(UserId from, BytesView datagram) {
  if (!server_handler_) throw TransportError("InProcNetwork: no server");
  server_handler_(from, datagram);
}

void InProcNetwork::deliver_to(UserId user, BytesView datagram) {
  static auto& deliveries =
      telemetry::Registry::global().counter("transport.inproc.deliveries");
  static auto& bytes =
      telemetry::Registry::global().counter("transport.inproc.bytes");
  static auto& drops =
      telemetry::Registry::global().counter("transport.inproc.drops");
  auto it = clients_.find(user);
  if (it == clients_.end()) {
    if (telemetry::enabled()) drops.add(1);
    return;  // raced with a departure; drop
  }
  ++deliveries_;
  delivered_bytes_ += datagram.size();
  if (telemetry::enabled()) {
    deliveries.add(1);
    bytes.add(datagram.size());
  }
  it->second(datagram);
}

void InProcNetwork::deliver(const rekey::Recipient& to, BytesView datagram,
                            const Resolver& resolve) {
  (void)resolve;  // native multicast: membership is subscription state
  if (to.kind == rekey::Recipient::Kind::kUser) {
    deliver_to(to.user, datagram);
    return;
  }
  auto group = subgroups_.find(to.include);
  if (group == subgroups_.end()) return;
  const std::set<UserId>* excluded = nullptr;
  if (to.exclude.has_value()) {
    auto ex = subgroups_.find(*to.exclude);
    if (ex != subgroups_.end()) excluded = &ex->second;
  }
  // Copy: handlers may resubscribe (mutating subgroups_) during delivery.
  const std::vector<UserId> members(group->second.begin(),
                                    group->second.end());
  for (UserId user : members) {
    if (excluded != nullptr && excluded->contains(user)) continue;
    deliver_to(user, datagram);
  }
}

}  // namespace keygraphs::transport

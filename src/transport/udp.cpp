#include "transport/udp.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/error.h"
#include "telemetry/trace.h"

namespace keygraphs::transport {

namespace {

struct UdpMetrics {
  telemetry::Counter& datagrams_sent;
  telemetry::Counter& bytes_sent;
  telemetry::Counter& send_errors;
  telemetry::Counter& datagrams_received;
  telemetry::Counter& bytes_received;
  telemetry::Counter& peer_drops;  // deliveries to unregistered users
  telemetry::Histogram& send_ns;
  telemetry::Counter& sendmmsg_calls;
  telemetry::Histogram& sendmmsg_batch_size;

  static UdpMetrics& get() {
    auto& registry = telemetry::Registry::global();
    static UdpMetrics* metrics = new UdpMetrics{
        registry.counter("transport.udp.datagrams_sent"),
        registry.counter("transport.udp.bytes_sent"),
        registry.counter("transport.udp.send_errors"),
        registry.counter("transport.udp.datagrams_received"),
        registry.counter("transport.udp.bytes_received"),
        registry.counter("transport.udp.peer_drops"),
        registry.histogram("transport.udp.send_ns"),
        registry.counter("transport.udp.sendmmsg_calls"),
        registry.histogram("transport.udp.sendmmsg_batch_size"),
    };
    return *metrics;
  }
};

sockaddr_in to_sockaddr(const Address& address) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(address.ip);
  sa.sin_port = htons(address.port);
  return sa;
}

Address from_sockaddr(const sockaddr_in& sa) {
  return Address{ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
}

}  // namespace

UdpSocket::UdpSocket() { bind_loopback(0); }

UdpSocket::UdpSocket(std::uint16_t port) { bind_loopback(port); }

void UdpSocket::bind_loopback(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    throw TransportError(std::string("UdpSocket: socket(): ") +
                         std::strerror(errno));
  }
  const sockaddr_in sa = to_sockaddr(Address::loopback(port));
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    throw TransportError(std::string("UdpSocket: bind(): ") +
                         std::strerror(saved));
  }
  const char* disable = std::getenv("KG_DISABLE_SENDMMSG");
  use_sendmmsg_ = !(disable != nullptr && *disable != '\0' &&
                    !(disable[0] == '0' && disable[1] == '\0'));
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      use_sendmmsg_(other.use_sendmmsg_) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    use_sendmmsg_ = other.use_sendmmsg_;
  }
  return *this;
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpSocket::wait_writable() {
  pollfd pfd{fd_, POLLOUT, 0};
  ::poll(&pfd, 1, kSendPollMs);  // best effort: the send retry re-checks
}

bool UdpSocket::try_send_to(const Address& to, BytesView datagram) {
  const bool telemetry_on = telemetry::enabled();
  const std::uint64_t started =
      telemetry_on ? telemetry::steady_now_ns() : 0;
  const sockaddr_in sa = to_sockaddr(to);
  for (int attempt = 0; attempt <= kSendRetries; ++attempt) {
    const ssize_t sent =
        ::sendto(fd_, datagram.data(), datagram.size(), 0,
                 reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
    if (sent >= 0 && static_cast<std::size_t>(sent) == datagram.size()) {
      if (telemetry_on) {
        UdpMetrics& metrics = UdpMetrics::get();
        metrics.datagrams_sent.add(1);
        metrics.bytes_sent.add(datagram.size());
        metrics.send_ns.record(telemetry::steady_now_ns() - started);
      }
      return true;
    }
    if (sent < 0 && errno == EINTR) {
      continue;  // interrupted mid-call: retry immediately
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Socket buffer full: block until the kernel drains it (or the
      // short poll deadline passes) instead of burning CPU in a hot
      // retry spin that starves the very consumer we are waiting on.
      wait_writable();
      continue;
    }
    break;  // persistent (EMSGSIZE, ECONNREFUSED, closed fd, ...)
  }
  const int saved = errno;
  if (telemetry_on) UdpMetrics::get().send_errors.add(1);
  errno = saved;  // send_to reports the real failure, not a counter's
  return false;
}

std::size_t UdpSocket::send_batch(std::span<const GatherItem> items) {
#if defined(__linux__)
  if (use_sendmmsg_) {
    const bool telemetry_on = telemetry::enabled();
    std::size_t sent_total = 0;
    std::size_t done = 0;
    while (done < items.size()) {
      // One gather window: kSendBatch datagrams framed into parallel
      // mmsghdr/iovec/sockaddr arrays, handed to the kernel in a single
      // syscall. sendmmsg returns how many it accepted; a short return
      // resumes at the first unsent datagram.
      const std::size_t window = std::min(kSendBatch, items.size() - done);
      mmsghdr msgs[kSendBatch];
      iovec iovs[kSendBatch];
      sockaddr_in addrs[kSendBatch];
      for (std::size_t i = 0; i < window; ++i) {
        const GatherItem& item = items[done + i];
        addrs[i] = to_sockaddr(item.to);
        iovs[i].iov_base =
            const_cast<std::uint8_t*>(item.datagram.data());
        iovs[i].iov_len = item.datagram.size();
        std::memset(&msgs[i], 0, sizeof(msgs[i]));
        msgs[i].msg_hdr.msg_name = &addrs[i];
        msgs[i].msg_hdr.msg_namelen = sizeof(addrs[i]);
        msgs[i].msg_hdr.msg_iov = &iovs[i];
        msgs[i].msg_hdr.msg_iovlen = 1;
      }
      std::size_t window_done = 0;
      int retries = 0;
      while (window_done < window) {
        const std::uint64_t started =
            telemetry_on ? telemetry::steady_now_ns() : 0;
        const int rc = ::sendmmsg(fd_, msgs + window_done,
                                  static_cast<unsigned>(window - window_done),
                                  0);
        if (rc > 0) {
          if (telemetry_on) {
            UdpMetrics& metrics = UdpMetrics::get();
            metrics.sendmmsg_calls.add(1);
            metrics.sendmmsg_batch_size.record(
                static_cast<std::uint64_t>(rc));
            metrics.datagrams_sent.add(static_cast<std::uint64_t>(rc));
            std::uint64_t bytes = 0;
            for (int i = 0; i < rc; ++i) {
              bytes += items[done + window_done + i].datagram.size();
            }
            metrics.bytes_sent.add(bytes);
            // Keep send_ns per-datagram attributable: each datagram of
            // the call carries an equal share of its wall time.
            const std::uint64_t share =
                (telemetry::steady_now_ns() - started) /
                static_cast<std::uint64_t>(rc);
            for (int i = 0; i < rc; ++i) metrics.send_ns.record(share);
          }
          window_done += static_cast<std::size_t>(rc);
          sent_total += static_cast<std::size_t>(rc);
          retries = 0;
          continue;
        }
        if (rc < 0 && errno == EINTR) {
          if (++retries > kSendRetries) break;
          continue;
        }
        if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          if (++retries > kSendRetries) break;
          wait_writable();
          continue;
        }
        // Persistent error: it concerns the first unsent datagram. Give
        // that one the per-datagram path (which counts send_errors when
        // it too fails) and carry on with the rest of the window, so one
        // bad peer cannot sink the whole fan-out.
        if (try_send_to(items[done + window_done].to,
                        items[done + window_done].datagram)) {
          ++sent_total;
        }
        ++window_done;
        retries = 0;
      }
      // Retry budget exhausted mid-window: sweep the remainder through
      // the per-datagram path rather than dropping it silently.
      for (; window_done < window; ++window_done) {
        if (try_send_to(items[done + window_done].to,
                        items[done + window_done].datagram)) {
          ++sent_total;
        }
      }
      done += window;
    }
    return sent_total;
  }
#endif  // __linux__
  std::size_t sent_total = 0;
  for (const GatherItem& item : items) {
    if (try_send_to(item.to, item.datagram)) ++sent_total;
  }
  return sent_total;
}

void UdpSocket::send_to(const Address& to, BytesView datagram) {
  if (!try_send_to(to, datagram)) {
    throw TransportError(std::string("UdpSocket: sendto(): ") +
                         std::strerror(errno));
  }
}

std::optional<std::pair<Address, Bytes>> UdpSocket::receive(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return std::nullopt;  // signal: let the caller's
                                              // loop observe its stop flag
    throw TransportError(std::string("UdpSocket: poll(): ") +
                         std::strerror(errno));
  }
  if (ready == 0) return std::nullopt;

  Bytes buffer(65536);
  sockaddr_in sa{};
  socklen_t sa_len = sizeof(sa);
  const ssize_t received =
      ::recvfrom(fd_, buffer.data(), buffer.size(), 0,
                 reinterpret_cast<sockaddr*>(&sa), &sa_len);
  if (received < 0) {
    throw TransportError(std::string("UdpSocket: recvfrom(): ") +
                         std::strerror(errno));
  }
  buffer.resize(static_cast<std::size_t>(received));
  if (telemetry::enabled()) {
    UdpMetrics& metrics = UdpMetrics::get();
    metrics.datagrams_received.add(1);
    metrics.bytes_received.add(buffer.size());
  }
  return std::make_pair(from_sockaddr(sa), std::move(buffer));
}

Address UdpSocket::local_address() const {
  sockaddr_in sa{};
  socklen_t sa_len = sizeof(sa);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &sa_len) != 0) {
    throw TransportError(std::string("UdpSocket: getsockname(): ") +
                         std::strerror(errno));
  }
  return from_sockaddr(sa);
}

void UdpServerTransport::register_user(UserId user, const Address& address) {
  peers_[user] = address;
}

void UdpServerTransport::unregister_user(UserId user) { peers_.erase(user); }

void UdpServerTransport::gather_recipient(const rekey::Recipient& to,
                                          BytesView datagram,
                                          const Resolver& resolve) {
  if (to.kind == rekey::Recipient::Kind::kUser) {
    auto it = peers_.find(to.user);
    if (it == peers_.end()) {
      if (telemetry::enabled()) UdpMetrics::get().peer_drops.add(1);
    } else {
      gather_.push_back({it->second, datagram});
    }
    return;
  }
  // No subgroup multicast on the wire: fan out as unicast to the resolved
  // membership (paper Section 7's no-multicast fallback).
  for (UserId user : resolve()) {
    auto it = peers_.find(user);
    if (it == peers_.end()) {
      if (telemetry::enabled()) UdpMetrics::get().peer_drops.add(1);
    } else {
      gather_.push_back({it->second, datagram});
    }
  }
}

void UdpServerTransport::deliver(const rekey::Recipient& to,
                                 BytesView datagram,
                                 const Resolver& resolve) {
  // send_batch degrades to try_send_to per datagram (never send_to): one
  // unreachable peer (buffer pressure, a vanished socket) must not throw
  // away delivery to everyone resolved after it — the victims recover
  // through the NACK/resync path, the rest should not need to.
  gather_.clear();
  gather_recipient(to, datagram, resolve);
  const std::size_t sent = socket_.send_batch(gather_);
  datagrams_sent_ += sent;
  send_failures_ += gather_.size() - sent;
}

void UdpServerTransport::deliver_many(
    std::span<const OutboundDatagram> items) {
  gather_.clear();
  for (const OutboundDatagram& item : items) {
    gather_recipient(item.to, item.datagram, item.resolve);
  }
  const std::size_t sent = socket_.send_batch(gather_);
  datagrams_sent_ += sent;
  send_failures_ += gather_.size() - sent;
}

}  // namespace keygraphs::transport

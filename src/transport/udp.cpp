#include "transport/udp.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"
#include "telemetry/trace.h"

namespace keygraphs::transport {

namespace {

struct UdpMetrics {
  telemetry::Counter& datagrams_sent;
  telemetry::Counter& bytes_sent;
  telemetry::Counter& send_errors;
  telemetry::Counter& datagrams_received;
  telemetry::Counter& bytes_received;
  telemetry::Counter& peer_drops;  // deliveries to unregistered users
  telemetry::Histogram& send_ns;

  static UdpMetrics& get() {
    auto& registry = telemetry::Registry::global();
    static UdpMetrics* metrics = new UdpMetrics{
        registry.counter("transport.udp.datagrams_sent"),
        registry.counter("transport.udp.bytes_sent"),
        registry.counter("transport.udp.send_errors"),
        registry.counter("transport.udp.datagrams_received"),
        registry.counter("transport.udp.bytes_received"),
        registry.counter("transport.udp.peer_drops"),
        registry.histogram("transport.udp.send_ns"),
    };
    return *metrics;
  }
};

sockaddr_in to_sockaddr(const Address& address) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(address.ip);
  sa.sin_port = htons(address.port);
  return sa;
}

Address from_sockaddr(const sockaddr_in& sa) {
  return Address{ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
}

}  // namespace

UdpSocket::UdpSocket() { bind_loopback(0); }

UdpSocket::UdpSocket(std::uint16_t port) { bind_loopback(port); }

void UdpSocket::bind_loopback(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    throw TransportError(std::string("UdpSocket: socket(): ") +
                         std::strerror(errno));
  }
  const sockaddr_in sa = to_sockaddr(Address::loopback(port));
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    throw TransportError(std::string("UdpSocket: bind(): ") +
                         std::strerror(saved));
  }
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

bool UdpSocket::try_send_to(const Address& to, BytesView datagram) {
  const bool telemetry_on = telemetry::enabled();
  const std::uint64_t started =
      telemetry_on ? telemetry::steady_now_ns() : 0;
  const sockaddr_in sa = to_sockaddr(to);
  for (int attempt = 0; attempt <= kSendRetries; ++attempt) {
    const ssize_t sent =
        ::sendto(fd_, datagram.data(), datagram.size(), 0,
                 reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
    if (sent >= 0 && static_cast<std::size_t>(sent) == datagram.size()) {
      if (telemetry_on) {
        UdpMetrics& metrics = UdpMetrics::get();
        metrics.datagrams_sent.add(1);
        metrics.bytes_sent.add(datagram.size());
        metrics.send_ns.record(telemetry::steady_now_ns() - started);
      }
      return true;
    }
    if (sent < 0 &&
        (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;  // transient: interrupted or socket buffer full
    }
    break;  // persistent (EMSGSIZE, ECONNREFUSED, closed fd, ...)
  }
  const int saved = errno;
  if (telemetry_on) UdpMetrics::get().send_errors.add(1);
  errno = saved;  // send_to reports the real failure, not a counter's
  return false;
}

void UdpSocket::send_to(const Address& to, BytesView datagram) {
  if (!try_send_to(to, datagram)) {
    throw TransportError(std::string("UdpSocket: sendto(): ") +
                         std::strerror(errno));
  }
}

std::optional<std::pair<Address, Bytes>> UdpSocket::receive(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return std::nullopt;  // signal: let the caller's
                                              // loop observe its stop flag
    throw TransportError(std::string("UdpSocket: poll(): ") +
                         std::strerror(errno));
  }
  if (ready == 0) return std::nullopt;

  Bytes buffer(65536);
  sockaddr_in sa{};
  socklen_t sa_len = sizeof(sa);
  const ssize_t received =
      ::recvfrom(fd_, buffer.data(), buffer.size(), 0,
                 reinterpret_cast<sockaddr*>(&sa), &sa_len);
  if (received < 0) {
    throw TransportError(std::string("UdpSocket: recvfrom(): ") +
                         std::strerror(errno));
  }
  buffer.resize(static_cast<std::size_t>(received));
  if (telemetry::enabled()) {
    UdpMetrics& metrics = UdpMetrics::get();
    metrics.datagrams_received.add(1);
    metrics.bytes_received.add(buffer.size());
  }
  return std::make_pair(from_sockaddr(sa), std::move(buffer));
}

Address UdpSocket::local_address() const {
  sockaddr_in sa{};
  socklen_t sa_len = sizeof(sa);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &sa_len) != 0) {
    throw TransportError(std::string("UdpSocket: getsockname(): ") +
                         std::strerror(errno));
  }
  return from_sockaddr(sa);
}

void UdpServerTransport::register_user(UserId user, const Address& address) {
  peers_[user] = address;
}

void UdpServerTransport::unregister_user(UserId user) { peers_.erase(user); }

void UdpServerTransport::deliver(const rekey::Recipient& to,
                                 BytesView datagram,
                                 const Resolver& resolve) {
  // try_send_to, not send_to: one unreachable peer (buffer pressure, a
  // vanished socket) must not throw away delivery to everyone resolved
  // after it — the victims recover through the NACK/resync path, the rest
  // should not need to.
  if (to.kind == rekey::Recipient::Kind::kUser) {
    auto it = peers_.find(to.user);
    if (it == peers_.end()) {
      if (telemetry::enabled()) UdpMetrics::get().peer_drops.add(1);
    } else if (socket_.try_send_to(it->second, datagram)) {
      ++datagrams_sent_;
    } else {
      ++send_failures_;
    }
    return;
  }
  // No subgroup multicast on the wire: fan out as unicast to the resolved
  // membership (paper Section 7's no-multicast fallback).
  for (UserId user : resolve()) {
    auto it = peers_.find(user);
    if (it == peers_.end()) {
      if (telemetry::enabled()) UdpMetrics::get().peer_drops.add(1);
    } else if (socket_.try_send_to(it->second, datagram)) {
      ++datagrams_sent_;
    } else {
      ++send_failures_;
    }
  }
}

}  // namespace keygraphs::transport

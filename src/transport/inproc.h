// In-process network with true subgroup multicast.
//
// Models the paper's ideal network: a multicast address per k-node
// subgroup. Clients subscribe to the key ids they hold; a subgroup delivery
// reaches holders of `include` minus holders of `exclude` — exactly the
// paper's userset(K_i) - userset(K_{i+1}) recipient sets — without the
// server enumerating members. Synchronous: delivery invokes the receiving
// handler inline (the experiment harness controls ordering).
#pragma once

#include <functional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "transport/transport.h"

namespace keygraphs::transport {

class InProcNetwork final : public ServerTransport {
 public:
  using ClientHandler = std::function<void(BytesView datagram)>;
  using ServerHandler =
      std::function<void(UserId from, BytesView datagram)>;

  /// Registers/replaces the server-side inbound handler.
  void attach_server(ServerHandler handler);

  /// Registers a client endpoint. Throws TransportError on duplicates.
  void attach_client(UserId user, ClientHandler handler);

  /// Removes a client and all its subscriptions (a departing member stops
  /// listening; Table 6 counts only messages received by members).
  void detach_client(UserId user);

  /// Declares that `user` holds key `key` (joins that subgroup's multicast
  /// address). Idempotent.
  void subscribe(UserId user, KeyId key);
  void unsubscribe(UserId user, KeyId key);

  /// Replaces a client's subscription set in one call.
  void resubscribe(UserId user, const std::vector<KeyId>& keys);

  /// Client -> server datagram.
  void send_to_server(UserId from, BytesView datagram);

  // ServerTransport: server -> clients.
  void deliver(const rekey::Recipient& to, BytesView datagram,
               const Resolver& resolve) override;

  /// Delivery counters (Table 6: messages/bytes received per client).
  [[nodiscard]] std::size_t deliveries() const noexcept {
    return deliveries_;
  }
  [[nodiscard]] std::size_t delivered_bytes() const noexcept {
    return delivered_bytes_;
  }
  void reset_counters() noexcept { deliveries_ = delivered_bytes_ = 0; }

  [[nodiscard]] std::size_t client_count() const noexcept {
    return clients_.size();
  }

 private:
  void deliver_to(UserId user, BytesView datagram);

  ServerHandler server_handler_;
  std::unordered_map<UserId, ClientHandler> clients_;
  std::unordered_map<KeyId, std::set<UserId>> subgroups_;
  std::unordered_map<UserId, std::unordered_set<KeyId>> subscriptions_;
  std::size_t deliveries_ = 0;
  std::size_t delivered_bytes_ = 0;
};

}  // namespace keygraphs::transport

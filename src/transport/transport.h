// Transport abstraction.
//
// The paper's prototype sends join/leave/rekey traffic as UDP datagrams and
// assumes reliable delivery plus subgroup multicast where available. We
// provide three implementations behind one server-facing interface:
//   - InProcNetwork: in-process delivery with true subgroup multicast (the
//     client-simulator and most benches run on this);
//   - UdpServerTransport (udp.h): real sockets, subgroup multicast emulated
//     by unicast fan-out (the paper's fallback when the network lacks it);
//   - NullTransport: discards traffic but counts it (server-side timing
//     benches, where client work must not pollute server measurements).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "keygraph/key.h"
#include "rekey/message.h"

namespace keygraphs::transport {

/// Server-side outbound port. `resolve` lazily enumerates the users behind
/// a subgroup recipient; implementations with native multicast (InProc)
/// never call it, unicast fan-out implementations do.
class ServerTransport {
 public:
  virtual ~ServerTransport() = default;

  using Resolver = std::function<std::vector<UserId>()>;

  virtual void deliver(const rekey::Recipient& to, BytesView datagram,
                       const Resolver& resolve) = 0;

  /// One framed datagram of a dispatch burst, for deliver_many.
  struct OutboundDatagram {
    rekey::Recipient to;
    BytesView datagram;
    Resolver resolve;
  };

  /// Delivers a whole burst at once. Semantically identical to calling
  /// deliver() on each item in order — and that is the default — but
  /// implementations that can gather (UDP via sendmmsg) override it to
  /// amortize per-datagram syscall cost across the burst. The referenced
  /// datagram bytes must stay alive for the duration of the call.
  virtual void deliver_many(std::span<const OutboundDatagram> items) {
    for (const OutboundDatagram& item : items) {
      deliver(item.to, item.datagram, item.resolve);
    }
  }
};

/// Counts-only transport for timing benches.
class NullTransport final : public ServerTransport {
 public:
  void deliver(const rekey::Recipient& to, BytesView datagram,
               const Resolver& resolve) override {
    (void)to;
    (void)resolve;
    ++datagrams_;
    bytes_ += datagram.size();
  }

  [[nodiscard]] std::size_t datagrams() const noexcept { return datagrams_; }
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }
  void reset() noexcept { datagrams_ = bytes_ = 0; }

 private:
  std::size_t datagrams_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace keygraphs::transport

// Deterministic network-fault injection (drop / duplicate / reorder /
// delay / corrupt) for any transport edge.
//
// The paper's prototype assumes reliable rekey delivery; the reliability
// layer (rekey/retransmit.h server-side, the GroupClient recovery state
// machine client-side) exists precisely because real networks break that
// assumption. This decorator makes those breakages reproducible: every
// fault decision is drawn from one seeded stream, so a failing churn
// scenario replays bit-for-bit from its seed, and an optional event trace
// lets a test assert that two runs injected the identical fault sequence.
//
// Two attachment points share one FaultEngine:
//   - FaultyServerTransport wraps a ServerTransport: faults apply to whole
//     deliver() calls (a dropped subgroup multicast is lost for every
//     subscriber, like a dropped multicast packet).
//   - make_faulty_inbox() wraps one client's delivery handler: faults apply
//     per receiving user (independent last-hop loss), which is what the
//     churn-under-loss soak uses.
//
// "Time" is delivery count, not a wall clock: a reordered or delayed
// datagram is released after the next `span` deliveries pass through the
// engine (or at flush()). That keeps fault schedules deterministic without
// any sleeping.
//
// Not thread-safe: the engine assumes externally serialized deliveries
// (the single-threaded harnesses and the locked server's dispatch path,
// which already serializes transport sends).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "crypto/random.h"
#include "transport/transport.h"

namespace keygraphs::transport {

/// Per-edge fault probabilities, each in [0, 1] and evaluated in the order
/// drop, duplicate, corrupt, reorder, delay (first match wins).
struct FaultRule {
  double drop = 0.0;       ///< datagram silently lost
  double duplicate = 0.0;  ///< delivered twice back to back
  double corrupt = 0.0;    ///< one random bit flipped
  double reorder = 0.0;    ///< held back past the next `reorder_span` deliveries
  double delay = 0.0;      ///< held back past the next `delay_span` deliveries
  std::size_t reorder_span = 1;
  std::size_t delay_span = 8;

  [[nodiscard]] bool active() const noexcept {
    return drop > 0 || duplicate > 0 || corrupt > 0 || reorder > 0 ||
           delay > 0;
  }
};

struct FaultConfig {
  /// Seed for the decision stream. The same seed and delivery sequence
  /// produce the same faults; there is no OS-entropy fallback on 0.
  std::uint64_t seed = 1;
  /// Applied to every delivery without a per-user override.
  FaultRule rule;
  /// Per-recipient overrides: unicast deliveries to (and inbox deliveries
  /// of) these users use their own rule instead of the global one.
  std::unordered_map<UserId, FaultRule> per_user;
  /// Record one FaultEvent per decision (tests assert trace equality
  /// between same-seed runs).
  bool record_trace = false;
};

enum class FaultAction : std::uint8_t {
  kPass = 0,
  kDrop = 1,
  kDuplicate = 2,
  kCorrupt = 3,
  kReorder = 4,
  kDelay = 5,
};

/// One decision, as recorded when FaultConfig::record_trace is set.
struct FaultEvent {
  std::uint64_t seq = 0;  // delivery sequence number (1-based)
  FaultAction action = FaultAction::kPass;
  UserId user = 0;  // addressed user; 0 for subgroup deliveries
  std::size_t size = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// The decision core shared by both decorators.
class FaultEngine {
 public:
  using Sink = std::function<void(BytesView datagram)>;

  explicit FaultEngine(FaultConfig config);

  /// Runs one datagram through the rules for `user` (0 = global rule
  /// only). `sink` is invoked zero, one or two times immediately; for
  /// reorder/delay it is copied and invoked when the hold expires on a
  /// later process()/flush() call.
  void process(UserId user, BytesView datagram, Sink sink);

  /// Releases every held datagram in delivery order (end of scenario; a
  /// harness that never flushes turns unexpired holds into drops).
  void flush();

  /// Replaces the global rule mid-scenario (per-user overrides keep
  /// precedence). Scenarios are phased with this: e.g. a lossy churn phase
  /// followed by a quiescent tail, which convergence arguments for
  /// gap-detection recovery require — a client that loses the final epoch
  /// silently can only notice once some later delivery gets through.
  void set_rule(FaultRule rule) noexcept { config_.rule = rule; }

  [[nodiscard]] const std::vector<FaultEvent>& trace() const noexcept {
    return trace_;
  }
  [[nodiscard]] std::size_t held() const noexcept { return held_.size(); }
  [[nodiscard]] std::uint64_t deliveries() const noexcept { return seq_; }

 private:
  [[nodiscard]] const FaultRule& rule_for(UserId user) const;
  [[nodiscard]] FaultAction decide(const FaultRule& rule);
  void release_due();

  struct Held {
    std::uint64_t release_after;  // released once seq_ passes this
    Bytes datagram;
    Sink sink;
  };

  FaultConfig config_;
  crypto::SecureRandom rng_;
  std::uint64_t seq_ = 0;
  std::deque<Held> held_;
  std::vector<FaultEvent> trace_;
};

/// ServerTransport decorator: every deliver() passes through the engine.
/// Subgroup deliveries use the global rule; unicast deliveries use the
/// recipient's per-user rule when present.
class FaultyServerTransport final : public ServerTransport {
 public:
  FaultyServerTransport(ServerTransport& inner, FaultConfig config)
      : inner_(inner), engine_(std::move(config)) {}

  void deliver(const rekey::Recipient& to, BytesView datagram,
               const Resolver& resolve) override;

  [[nodiscard]] FaultEngine& engine() noexcept { return engine_; }

 private:
  ServerTransport& inner_;
  FaultEngine engine_;
};

/// Wraps one client's delivery handler so its inbound datagrams pass
/// through `engine` under `user`'s rule. The engine must outlive the
/// returned handler.
[[nodiscard]] std::function<void(BytesView)> make_faulty_inbox(
    FaultEngine& engine, UserId user, std::function<void(BytesView)> handler);

}  // namespace keygraphs::transport

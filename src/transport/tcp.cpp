#include "transport/tcp.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.h"
#include "telemetry/trace.h"

namespace keygraphs::transport {

namespace {

[[noreturn]] void fail(const char* what) {
  throw TransportError(std::string("tcp: ") + what + ": " +
                       std::strerror(errno));
}

sockaddr_in loopback_sockaddr(std::uint16_t port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(0x7f000001u);
  sa.sin_port = htons(port);
  return sa;
}

Address address_of_fd(int fd) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    fail("getsockname()");
  }
  return Address{ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
}

// Reads exactly n bytes; false on orderly EOF at a frame boundary start.
bool read_exact(int fd, std::uint8_t* out, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t got = ::read(fd, out + done, n - done);
    if (got == 0) {
      if (done == 0) return false;
      throw TransportError("tcp: peer closed mid-frame");
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      fail("read()");
    }
    done += static_cast<std::size_t>(got);
  }
  return true;
}

void count_send_error() {
  if (!telemetry::enabled()) return;
  static auto& errors = telemetry::Registry::global().counter(
      "transport.tcp.send_errors",
      "TCP sends that failed: socket error or write-stall budget exhausted");
  errors.add(1);
}

// How long send() tolerates a peer that is not draining its socket buffer
// before giving up: kSendStallBudget rounds of a kSendStallMs POLLOUT
// wait (~2 s total). EINTR is not a stall and retries for free.
constexpr int kSendStallBudget = 40;
constexpr int kSendStallMs = 50;

void write_all(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t done = 0;
  int stalls = 0;
  while (done < n) {
    const ssize_t sent = ::write(fd, data + done, n - done);
    if (sent < 0) {
      const int saved = errno;
      if (saved == EINTR) continue;
      if (saved == EAGAIN || saved == EWOULDBLOCK) {
        // Full socket buffer on a non-blocking fd: wait (bounded) for the
        // peer to drain. The bound keeps one zero-window client from
        // wedging the whole dispatch fan-out; the caller drops it.
        if (++stalls > kSendStallBudget) {
          count_send_error();
          errno = ETIMEDOUT;
          fail("write() stalled, peer not draining");
        }
        pollfd pfd{fd, POLLOUT, 0};
        if (::poll(&pfd, 1, kSendStallMs) < 0 && errno != EINTR) {
          count_send_error();
          fail("poll(POLLOUT)");
        }
        continue;
      }
      count_send_error();
      errno = saved;
      fail("write()");
    }
    done += static_cast<std::size_t>(sent);
  }
}

bool wait_readable(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return false;
    fail("poll()");
  }
  return ready > 0;
}

}  // namespace

TcpConnection TcpConnection::connect(const Address& to) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket()");
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(to.ip);
  sa.sin_port = htons(to.port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) !=
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("connect()");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConnection(fd);
}

TcpConnection::TcpConnection(TcpConnection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpConnection& TcpConnection::operator=(TcpConnection&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

TcpConnection::~TcpConnection() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpConnection::send(BytesView message) {
  if (fd_ < 0) throw TransportError("tcp: send on closed connection");
  if (message.size() > kMaxFrame) {
    throw TransportError("tcp: frame too large");
  }
  static auto& send_ns =
      telemetry::Registry::global().histogram("transport.tcp.send_ns");
  const telemetry::ScopedSpan span("tcp.send", &send_ns);
  std::uint8_t prefix[4];
  const auto size = static_cast<std::uint32_t>(message.size());
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<std::uint8_t>(size >> (8 * i));
  }
  write_all(fd_, prefix, 4);
  write_all(fd_, message.data(), message.size());
  if (telemetry::enabled()) {
    static auto& messages_sent =
        telemetry::Registry::global().counter("transport.tcp.messages_sent");
    static auto& bytes_sent =
        telemetry::Registry::global().counter("transport.tcp.bytes_sent");
    messages_sent.add(1);
    bytes_sent.add(message.size() + sizeof(prefix));
  }
}

std::optional<Bytes> TcpConnection::receive(int timeout_ms) {
  if (fd_ < 0) throw TransportError("tcp: receive on closed connection");
  if (!wait_readable(fd_, timeout_ms)) return std::nullopt;
  std::uint8_t prefix[4];
  if (!read_exact(fd_, prefix, 4)) return std::nullopt;  // orderly EOF
  std::uint32_t size = 0;
  for (int i = 0; i < 4; ++i) {
    size |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
  }
  if (size > kMaxFrame) throw TransportError("tcp: oversized frame");
  Bytes message(size);
  if (size > 0 && !read_exact(fd_, message.data(), size)) {
    throw TransportError("tcp: peer closed mid-frame");
  }
  return message;
}

Address TcpConnection::local_address() const { return address_of_fd(fd_); }

void TcpConnection::set_nonblocking(bool on) {
  if (fd_ < 0) throw TransportError("tcp: set_nonblocking on closed fd");
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) fail("fcntl(F_GETFL)");
  const int wanted = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, wanted) < 0) fail("fcntl(F_SETFL)");
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) fail("socket()");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const sockaddr_in sa = loopback_sockaddr(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    fail("bind()");
  }
  if (::listen(fd_, 64) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    fail("listen()");
  }
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<TcpConnection> TcpListener::accept(int timeout_ms) {
  if (!wait_readable(fd_, timeout_ms)) return std::nullopt;
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) fail("accept()");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConnection(fd);
}

Address TcpListener::local_address() const { return address_of_fd(fd_); }

void TcpServerTransport::register_user(UserId user,
                                       TcpConnection connection) {
  connections_.insert_or_assign(user, std::move(connection));
}

void TcpServerTransport::unregister_user(UserId user) {
  connections_.erase(user);
}

TcpConnection* TcpServerTransport::connection_of(UserId user) {
  auto it = connections_.find(user);
  return it == connections_.end() ? nullptr : &it->second;
}

void TcpServerTransport::send_to_user(UserId user, BytesView message) {
  static auto& drops =
      telemetry::Registry::global().counter("transport.tcp.drops");
  auto it = connections_.find(user);
  if (it == connections_.end()) {
    if (telemetry::enabled()) drops.add(1);
    return;
  }
  try {
    it->second.send(message);
    ++messages_sent_;
  } catch (const TransportError&) {
    connections_.erase(it);  // the peer is gone; drop the connection
    if (telemetry::enabled()) drops.add(1);
  }
}

void TcpServerTransport::deliver(const rekey::Recipient& to,
                                 BytesView message, const Resolver& resolve) {
  if (to.kind == rekey::Recipient::Kind::kUser) {
    send_to_user(to.user, message);
    return;
  }
  for (UserId user : resolve()) send_to_user(user, message);
}

}  // namespace keygraphs::transport

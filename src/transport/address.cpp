#include "transport/address.h"

#include <arpa/inet.h>

#include "common/error.h"

namespace keygraphs::transport {

Address Address::parse(const std::string& host, std::uint16_t port) {
  in_addr parsed{};
  if (inet_pton(AF_INET, host.c_str(), &parsed) != 1) {
    throw TransportError("Address: cannot parse '" + host + "'");
  }
  return Address{ntohl(parsed.s_addr), port};
}

Address Address::loopback(std::uint16_t port) {
  return Address{0x7f000001u, port};
}

std::string Address::to_string() const {
  return std::to_string((ip >> 24) & 0xff) + "." +
         std::to_string((ip >> 16) & 0xff) + "." +
         std::to_string((ip >> 8) & 0xff) + "." + std::to_string(ip & 0xff) +
         ":" + std::to_string(port);
}

}  // namespace keygraphs::transport

#include "transport/fault.h"

#include <utility>

#include "telemetry/metrics.h"

namespace keygraphs::transport {

namespace {

struct FaultMetrics {
  telemetry::Counter& passed;
  telemetry::Counter& dropped;
  telemetry::Counter& duplicated;
  telemetry::Counter& corrupted;
  telemetry::Counter& reordered;
  telemetry::Counter& delayed;
  telemetry::Counter& released;

  static FaultMetrics& get() {
    auto& registry = telemetry::Registry::global();
    static FaultMetrics* metrics = new FaultMetrics{
        registry.counter("transport.fault.passed"),
        registry.counter("transport.fault.dropped"),
        registry.counter("transport.fault.duplicated"),
        registry.counter("transport.fault.corrupted"),
        registry.counter("transport.fault.reordered"),
        registry.counter("transport.fault.delayed"),
        registry.counter("transport.fault.released"),
    };
    return *metrics;
  }
};

void count(FaultAction action) {
  if (!telemetry::enabled()) return;
  FaultMetrics& metrics = FaultMetrics::get();
  switch (action) {
    case FaultAction::kPass:
      metrics.passed.add(1);
      break;
    case FaultAction::kDrop:
      metrics.dropped.add(1);
      break;
    case FaultAction::kDuplicate:
      metrics.duplicated.add(1);
      break;
    case FaultAction::kCorrupt:
      metrics.corrupted.add(1);
      break;
    case FaultAction::kReorder:
      metrics.reordered.add(1);
      break;
    case FaultAction::kDelay:
      metrics.delayed.add(1);
      break;
  }
}

}  // namespace

FaultEngine::FaultEngine(FaultConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

const FaultRule& FaultEngine::rule_for(UserId user) const {
  if (user != 0) {
    auto it = config_.per_user.find(user);
    if (it != config_.per_user.end()) return it->second;
  }
  return config_.rule;
}

FaultAction FaultEngine::decide(const FaultRule& rule) {
  if (!rule.active()) return FaultAction::kPass;
  // One draw per delivery keeps the stream advancing identically whichever
  // branch wins, so per-rule probability edits do not shift later faults'
  // positions within a seed.
  const double draw = rng_.uniform_unit();
  double bound = rule.drop;
  if (draw < bound) return FaultAction::kDrop;
  bound += rule.duplicate;
  if (draw < bound) return FaultAction::kDuplicate;
  bound += rule.corrupt;
  if (draw < bound) return FaultAction::kCorrupt;
  bound += rule.reorder;
  if (draw < bound) return FaultAction::kReorder;
  bound += rule.delay;
  if (draw < bound) return FaultAction::kDelay;
  return FaultAction::kPass;
}

void FaultEngine::process(UserId user, BytesView datagram, Sink sink) {
  ++seq_;
  const FaultRule& rule = rule_for(user);
  const FaultAction action = decide(rule);
  count(action);
  if (config_.record_trace) {
    trace_.push_back(FaultEvent{seq_, action, user, datagram.size()});
  }

  switch (action) {
    case FaultAction::kPass:
      sink(datagram);
      break;
    case FaultAction::kDrop:
      break;
    case FaultAction::kDuplicate:
      sink(datagram);
      sink(datagram);
      break;
    case FaultAction::kCorrupt: {
      Bytes mangled(datagram.begin(), datagram.end());
      if (!mangled.empty()) {
        const std::uint64_t bit = rng_.uniform(mangled.size() * 8);
        mangled[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      sink(mangled);
      break;
    }
    case FaultAction::kReorder:
    case FaultAction::kDelay: {
      const std::size_t span = action == FaultAction::kReorder
                                   ? rule.reorder_span
                                   : rule.delay_span;
      held_.push_back(Held{seq_ + span,
                           Bytes(datagram.begin(), datagram.end()),
                           std::move(sink)});
      break;
    }
  }
  release_due();
}

void FaultEngine::release_due() {
  // Holds are appended in seq order but expire at seq + span, so a short
  // reorder can come due before an older long delay: scan, don't pop-front.
  for (auto it = held_.begin(); it != held_.end();) {
    if (it->release_after <= seq_) {
      if (telemetry::enabled()) FaultMetrics::get().released.add(1);
      const Held due = std::move(*it);
      it = held_.erase(it);
      due.sink(due.datagram);  // may re-enter process() downstream
    } else {
      ++it;
    }
  }
}

void FaultEngine::flush() {
  while (!held_.empty()) {
    if (telemetry::enabled()) FaultMetrics::get().released.add(1);
    const Held due = std::move(held_.front());
    held_.pop_front();
    due.sink(due.datagram);
  }
}

void FaultyServerTransport::deliver(const rekey::Recipient& to,
                                    BytesView datagram,
                                    const Resolver& resolve) {
  const UserId user =
      to.kind == rekey::Recipient::Kind::kUser ? to.user : 0;
  // The resolver reference dies with this call; held (reordered/delayed)
  // deliveries re-resolve through a copy, which the server builds over the
  // plan-time view — stable no matter when the release happens.
  engine_.process(user, datagram,
                  [this, to, resolver = Resolver(resolve)](BytesView bytes) {
                    inner_.deliver(to, bytes, resolver);
                  });
}

std::function<void(BytesView)> make_faulty_inbox(
    FaultEngine& engine, UserId user,
    std::function<void(BytesView)> handler) {
  return [&engine, user, handler = std::move(handler)](BytesView datagram) {
    engine.process(user, datagram, handler);
  };
}

}  // namespace keygraphs::transport

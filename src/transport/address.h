// IPv4/UDP endpoint value type.
#pragma once

#include <cstdint>
#include <string>

namespace keygraphs::transport {

/// An IPv4 address + UDP port, host byte order. Value type; hashable for
/// use as a peer-registry key.
struct Address {
  std::uint32_t ip = 0;  // host byte order
  std::uint16_t port = 0;

  /// Parses dotted-quad text ("127.0.0.1"). Throws TransportError on junk.
  static Address parse(const std::string& host, std::uint16_t port);

  /// 127.0.0.1:port
  static Address loopback(std::uint16_t port);

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Address&, const Address&) = default;
};

}  // namespace keygraphs::transport

template <>
struct std::hash<keygraphs::transport::Address> {
  std::size_t operator()(
      const keygraphs::transport::Address& address) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(address.ip) << 16) | address.port);
  }
};

// Real UDP sockets, matching the paper's prototype transport ("actual rekey
// messages ... are sent between individual clients and the server using UDP
// over the 100 Mbps Ethernet"). The examples run server and clients over
// loopback on one machine, mirroring the paper's two-machine setup as
// closely as a single host allows.
#pragma once

#include <optional>
#include <unordered_map>
#include <utility>

#include "common/bytes.h"
#include "transport/address.h"
#include "transport/transport.h"

namespace keygraphs::transport {

/// RAII wrapper over a bound IPv4/UDP socket. Move-only.
class UdpSocket {
 public:
  /// Binds to 127.0.0.1 with an ephemeral port.
  UdpSocket();

  /// Binds to 127.0.0.1:port. Throws TransportError if the bind fails.
  explicit UdpSocket(std::uint16_t port);

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;
  ~UdpSocket();

  void send_to(const Address& to, BytesView datagram);

  /// Blocks up to `timeout_ms` (-1 = forever). Returns nullopt on timeout.
  std::optional<std::pair<Address, Bytes>> receive(int timeout_ms);

  [[nodiscard]] Address local_address() const;

 private:
  explicit UdpSocket(int fd) : fd_(fd) {}
  void bind_loopback(std::uint16_t port);

  int fd_ = -1;
};

/// ServerTransport over UDP: subgroup multicast is emulated by unicast
/// fan-out (the paper's fallback when the network provides no subgroup
/// multicast). The server registers each member's source address when its
/// join request arrives.
class UdpServerTransport final : public ServerTransport {
 public:
  explicit UdpServerTransport(UdpSocket& socket) : socket_(socket) {}

  void register_user(UserId user, const Address& address);
  void unregister_user(UserId user);

  void deliver(const rekey::Recipient& to, BytesView datagram,
               const Resolver& resolve) override;

  [[nodiscard]] std::size_t datagrams_sent() const noexcept {
    return datagrams_sent_;
  }

 private:
  UdpSocket& socket_;
  std::unordered_map<UserId, Address> peers_;
  std::size_t datagrams_sent_ = 0;
};

}  // namespace keygraphs::transport

// Real UDP sockets, matching the paper's prototype transport ("actual rekey
// messages ... are sent between individual clients and the server using UDP
// over the 100 Mbps Ethernet"). The examples run server and clients over
// loopback on one machine, mirroring the paper's two-machine setup as
// closely as a single host allows.
#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "transport/address.h"
#include "transport/transport.h"

namespace keygraphs::transport {

/// RAII wrapper over a bound IPv4/UDP socket. Move-only.
class UdpSocket {
 public:
  /// Binds to 127.0.0.1 with an ephemeral port.
  UdpSocket();

  /// Binds to 127.0.0.1:port. Throws TransportError if the bind fails.
  explicit UdpSocket(std::uint16_t port);

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;
  ~UdpSocket();

  /// Sends or throws TransportError. Transient failures (EINTR, EAGAIN)
  /// are retried up to kSendRetries times before giving up.
  void send_to(const Address& to, BytesView datagram);

  /// Non-throwing send: retries transient failures like send_to, then
  /// returns false (counting transport.udp.send_errors) instead of
  /// throwing. The fan-out path uses this so one unreachable peer cannot
  /// abort delivery to the recipients after it.
  bool try_send_to(const Address& to, BytesView datagram);

  /// Bounded retry budget for EINTR/EAGAIN: either the condition clears
  /// within a few attempts or it will not clear at all (closed socket,
  /// oversized datagram) and the send is reported failed.
  static constexpr int kSendRetries = 8;

  /// How long one EAGAIN retry waits for POLLOUT before re-attempting.
  /// Bounded so a dead socket cannot stall a fan-out for more than
  /// kSendRetries * kSendPollMs.
  static constexpr int kSendPollMs = 20;

  /// One datagram of a gathered send burst.
  struct GatherItem {
    Address to;
    BytesView datagram;
  };

  /// Datagrams per sendmmsg call: big enough that the syscall cost is
  /// noise, small enough that one window's mmsghdr/iovec arrays stay in
  /// cache (and under typical UIO_MAXIOV-style limits).
  static constexpr std::size_t kSendBatch = 64;

  /// Sends a burst, gathering kSendBatch datagrams per sendmmsg on Linux
  /// (per-datagram try_send_to elsewhere, or when set_sendmmsg(false)).
  /// Partially-accepted windows resume at the first unsent datagram;
  /// EAGAIN waits for POLLOUT like try_send_to. A datagram that still
  /// fails is skipped (counted in transport.udp.send_errors) and the
  /// burst continues, matching try_send_to's one-bad-peer semantics.
  /// Returns the number of datagrams actually handed to the kernel.
  std::size_t send_batch(std::span<const GatherItem> items);

  /// Test/bench override of the sendmmsg fast path (also disabled by the
  /// KG_DISABLE_SENDMMSG environment variable at construction).
  void set_sendmmsg(bool enabled) noexcept { use_sendmmsg_ = enabled; }
  [[nodiscard]] bool sendmmsg_enabled() const noexcept {
    return use_sendmmsg_;
  }

  /// Blocks up to `timeout_ms` (-1 = forever). Returns nullopt on timeout.
  std::optional<std::pair<Address, Bytes>> receive(int timeout_ms);

  [[nodiscard]] Address local_address() const;

 private:
  explicit UdpSocket(int fd) : fd_(fd) {}
  void bind_loopback(std::uint16_t port);

  /// Blocks up to kSendPollMs for the socket to become writable.
  void wait_writable();

  int fd_ = -1;
  bool use_sendmmsg_ = true;  // construction reads KG_DISABLE_SENDMMSG
};

/// ServerTransport over UDP: subgroup multicast is emulated by unicast
/// fan-out (the paper's fallback when the network provides no subgroup
/// multicast). The server registers each member's source address when its
/// join request arrives.
class UdpServerTransport final : public ServerTransport {
 public:
  explicit UdpServerTransport(UdpSocket& socket) : socket_(socket) {}

  void register_user(UserId user, const Address& address);
  void unregister_user(UserId user);

  void deliver(const rekey::Recipient& to, BytesView datagram,
               const Resolver& resolve) override;

  /// Gathers the whole burst — unicast items and resolved subgroup
  /// fan-outs alike — into one address/datagram list and pushes it
  /// through UdpSocket::send_batch, so a rekey dispatch costs
  /// ceil(datagrams / UdpSocket::kSendBatch) syscalls instead of one
  /// sendto each. Bytes on the wire are identical to per-item deliver().
  void deliver_many(std::span<const OutboundDatagram> items) override;

  [[nodiscard]] std::size_t datagrams_sent() const noexcept {
    return datagrams_sent_;
  }
  /// Sends that failed after retries (also in transport.udp.send_errors).
  [[nodiscard]] std::size_t send_failures() const noexcept {
    return send_failures_;
  }

 private:
  /// Appends the resolved targets of one recipient to gather_.
  void gather_recipient(const rekey::Recipient& to, BytesView datagram,
                        const Resolver& resolve);

  UdpSocket& socket_;
  std::unordered_map<UserId, Address> peers_;
  std::vector<UdpSocket::GatherItem> gather_;  // reused across bursts
  std::size_t datagrams_sent_ = 0;
  std::size_t send_failures_ = 0;
};

}  // namespace keygraphs::transport

#include "iolus/iolus.h"

#include <algorithm>

#include "common/error.h"

namespace keygraphs::iolus {

namespace {

Bytes wrap_under(crypto::CipherAlgorithm cipher, const Bytes& key,
                 BytesView payload, crypto::SecureRandom& rng) {
  const crypto::CbcCipher cbc(crypto::make_cipher(cipher, key));
  return cbc.encrypt(payload, rng);
}

Bytes unwrap_under(crypto::CipherAlgorithm cipher, const Bytes& key,
                   BytesView sealed) {
  const crypto::CbcCipher cbc(crypto::make_cipher(cipher, key));
  return cbc.decrypt(sealed);
}

}  // namespace

IolusNetwork::IolusNetwork(IolusConfig config)
    : config_(config),
      rng_(config.rng_seed == 0 ? crypto::SecureRandom()
                                : crypto::SecureRandom(config.rng_seed)),
      key_size_(crypto::cipher_key_size(config.cipher)) {
  if (config_.agents == 0) {
    throw ProtocolError("Iolus: need at least one agent");
  }
  top_key_ = SymmetricKey{next_key_id_++, 1, rng_.bytes(key_size_)};
  agents_.resize(config_.agents);
  for (Agent& agent : agents_) {
    agent.subgroup_key = SymmetricKey{next_key_id_++, 1,
                                      rng_.bytes(key_size_)};
  }
}

Bytes IolusNetwork::fresh_key() { return rng_.bytes(key_size_); }

void IolusNetwork::count_wrap(IolusCost* cost) {
  if (cost != nullptr) ++cost->key_encryptions;
}

std::size_t IolusNetwork::agent_of(UserId user) const {
  auto it = member_agent_.find(user);
  if (it == member_agent_.end()) {
    throw ProtocolError("Iolus: user not in group");
  }
  return it->second;
}

IolusCost IolusNetwork::join(UserId user) {
  if (member_agent_.contains(user)) {
    throw ProtocolError("Iolus: user already in group");
  }
  // Least-loaded agent takes the newcomer (Iolus assigns by locality; load
  // is the closest deterministic stand-in).
  const std::size_t index = static_cast<std::size_t>(std::distance(
      agents_.begin(),
      std::min_element(agents_.begin(), agents_.end(),
                       [](const Agent& a, const Agent& b) {
                         return a.members.size() < b.members.size();
                       })));
  Agent& agent = agents_[index];

  IolusCost cost;
  const Bytes individual = rng_.bytes(key_size_);
  individual_keys_[user] = individual;

  // Local rekey only: new subgroup key multicast under the old one, plus a
  // unicast under the newcomer's individual key. Other subgroups are
  // untouched — Iolus's headline property.
  SymmetricKey fresh{agent.subgroup_key.id, agent.subgroup_key.version + 1,
                     fresh_key()};
  if (!agent.members.empty()) {
    (void)wrap_under(config_.cipher, agent.subgroup_key.secret, fresh.secret,
                     rng_);
    count_wrap(&cost);
    ++cost.messages;
  }
  (void)wrap_under(config_.cipher, individual, fresh.secret, rng_);
  count_wrap(&cost);
  ++cost.messages;
  agent.subgroup_key = std::move(fresh);
  agent.members.push_back(user);
  member_agent_[user] = index;

  rekey_totals_.key_encryptions += cost.key_encryptions;
  rekey_totals_.messages += cost.messages;
  return cost;
}

IolusCost IolusNetwork::leave(UserId user) {
  const std::size_t index = agent_of(user);
  Agent& agent = agents_[index];
  std::erase(agent.members, user);
  member_agent_.erase(user);
  individual_keys_.erase(user);

  // Star-style local rekey: the new subgroup key is unicast to each
  // remaining local member under its individual key. Cost is proportional
  // to the SUBGROUP size, not the group size.
  IolusCost cost;
  SymmetricKey fresh{agent.subgroup_key.id, agent.subgroup_key.version + 1,
                     fresh_key()};
  for (UserId member : agent.members) {
    (void)wrap_under(config_.cipher, individual_keys_.at(member),
                     fresh.secret, rng_);
    count_wrap(&cost);
    ++cost.messages;
  }
  agent.subgroup_key = std::move(fresh);

  rekey_totals_.key_encryptions += cost.key_encryptions;
  rekey_totals_.messages += cost.messages;
  return cost;
}

IolusDataMessage IolusNetwork::send(UserId sender, BytesView payload,
                                    IolusCost* cost) {
  const std::size_t origin = agent_of(sender);

  IolusDataMessage message;
  const Bytes message_key = fresh_key();

  // The sender: payload under MK, MK under its own subgroup key.
  message.payload_ciphertext =
      wrap_under(config_.cipher, message_key, payload, rng_);
  count_wrap(cost);
  message.wrapped_message_key[origin] = wrap_under(
      config_.cipher, agents_[origin].subgroup_key.secret, message_key, rng_);
  count_wrap(cost);

  // The origin agent unwraps and re-wraps for the top-level subgroup...
  Bytes in_transit = unwrap_under(config_.cipher,
                                  agents_[origin].subgroup_key.secret,
                                  message.wrapped_message_key[origin]);
  if (cost != nullptr) ++cost->key_decryptions;
  message.wrapped_message_key[IolusDataMessage::kTopSubgroup] =
      wrap_under(config_.cipher, top_key_.secret, in_transit, rng_);
  count_wrap(cost);

  // ...and every other agent unwraps the top copy and re-wraps for its own
  // clients. This is the per-message work the paper contrasts with the key
  // tree's per-join/leave work.
  for (std::size_t index = 0; index < agents_.size(); ++index) {
    if (index == origin || agents_[index].members.empty()) continue;
    const Bytes at_agent = unwrap_under(
        config_.cipher, top_key_.secret,
        message.wrapped_message_key[IolusDataMessage::kTopSubgroup]);
    if (cost != nullptr) ++cost->key_decryptions;
    message.wrapped_message_key[index] = wrap_under(
        config_.cipher, agents_[index].subgroup_key.secret, at_agent, rng_);
    count_wrap(cost);
  }
  secure_wipe(in_transit);

  if (cost != nullptr) {
    data_totals_.key_encryptions += cost->key_encryptions;
    data_totals_.key_decryptions += cost->key_decryptions;
    ++data_totals_.messages;
  }
  return message;
}

Bytes IolusNetwork::read(UserId reader,
                         const IolusDataMessage& message) const {
  const std::size_t index = agent_of(reader);
  auto it = message.wrapped_message_key.find(index);
  if (it == message.wrapped_message_key.end()) {
    throw ProtocolError("Iolus: no message key for this subgroup");
  }
  const Bytes message_key = unwrap_under(
      config_.cipher, agents_[index].subgroup_key.secret, it->second);
  return unwrap_under(config_.cipher, message_key,
                      message.payload_ciphertext);
}

std::size_t IolusNetwork::member_count() const {
  return member_agent_.size();
}

SymmetricKey IolusNetwork::subgroup_key_of(UserId user) const {
  return agents_[agent_of(user)].subgroup_key;
}

}  // namespace keygraphs::iolus

// Iolus (Mittra, SIGCOMM '97) — the system the paper compares against in
// Section 6, implemented as a faithful miniature so the comparison can be
// measured instead of argued.
//
// Architecture: a hierarchy of trusted group security agents (GSAs). The
// top-level agent (the GSC) and the second-level agents form one subgroup
// sharing a key; each agent and its clients form another. There is no
// globally shared group key:
//   - a join/leave rekeys ONLY the local subgroup ("1 does not equal n"
//     solved locally; leaves cost subgroup_size - 1, not n - 1);
//   - but every confidential DATA message pays instead: the sender wraps a
//     fresh message key under its subgroup key, and each agent on the path
//     unwraps and re-wraps it for the adjacent subgroups ("1 affects n"
//     moved from rekey time to send time — the paper's central contrast).
//
// We implement the two-level hierarchy the paper's comparison discusses,
// with real key material and real CBC wrapping, so the costs reported by
// the ablation bench are measured the same way as the key-tree costs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "crypto/cbc.h"
#include "crypto/random.h"
#include "crypto/suite.h"
#include "keygraph/key.h"

namespace keygraphs::iolus {

struct IolusConfig {
  /// Number of second-level agents (each serving one client subgroup).
  std::size_t agents = 4;
  crypto::CipherAlgorithm cipher = crypto::CipherAlgorithm::kDes;
  std::uint64_t rng_seed = 1;
};

/// Crypto-operation counts for one action, in the paper's cost units.
struct IolusCost {
  std::size_t key_encryptions = 0;  // performed by the GSC/agents
  std::size_t key_decryptions = 0;  // performed by agents on the data path
  std::size_t messages = 0;
};

/// A sealed group data message: payload ciphertext plus one wrapped copy of
/// the message key per subgroup (what the agents' re-encryption produced).
struct IolusDataMessage {
  Bytes payload_ciphertext;
  std::map<std::size_t, Bytes> wrapped_message_key;  // subgroup -> {MK}_SK
  static constexpr std::size_t kTopSubgroup = SIZE_MAX;
};

/// The Iolus secure-distribution tree (two levels, single group).
class IolusNetwork {
 public:
  explicit IolusNetwork(IolusConfig config);

  /// Adds a member to the least-loaded agent's subgroup and rekeys only
  /// that subgroup (multicast under the old subgroup key + a unicast under
  /// the member's individual key). Returns the measured cost.
  IolusCost join(UserId user);

  /// Removes a member; the local subgroup rekeys star-style: the new
  /// subgroup key is unicast to each remaining local member.
  IolusCost leave(UserId user);

  /// Confidential message from `sender` to the whole group: generates a
  /// message key, seals the payload once, and performs the agent unwrap/
  /// re-wrap chain. The returned message decrypts in every subgroup.
  IolusDataMessage send(UserId sender, BytesView payload, IolusCost* cost);

  /// Decrypts a data message as `reader` would (using its subgroup key).
  /// Throws CryptoError/ProtocolError if the member cannot.
  [[nodiscard]] Bytes read(UserId reader,
                           const IolusDataMessage& message) const;

  [[nodiscard]] std::size_t member_count() const;
  [[nodiscard]] std::size_t agent_count() const { return agents_.size(); }

  /// Trusted entities: every agent plus the GSC (Section 6's "the level of
  /// trust required ... is much greater in Iolus").
  [[nodiscard]] std::size_t trusted_entities() const {
    return agents_.size() + 1;
  }

  /// Current subgroup key of the member's subgroup (for secrecy tests).
  [[nodiscard]] SymmetricKey subgroup_key_of(UserId user) const;

  /// Lifetime totals.
  [[nodiscard]] const IolusCost& rekey_totals() const {
    return rekey_totals_;
  }
  [[nodiscard]] const IolusCost& data_totals() const { return data_totals_; }

 private:
  struct Agent {
    SymmetricKey subgroup_key;
    std::vector<UserId> members;
  };

  [[nodiscard]] std::size_t agent_of(UserId user) const;
  [[nodiscard]] Bytes fresh_key();
  void count_wrap(IolusCost* cost);

  IolusConfig config_;
  crypto::SecureRandom rng_;
  std::size_t key_size_;
  SymmetricKey top_key_;  // shared by the GSC and the agents
  std::vector<Agent> agents_;
  std::map<UserId, Bytes> individual_keys_;
  std::map<UserId, std::size_t> member_agent_;
  KeyId next_key_id_ = 1;
  IolusCost rekey_totals_;
  IolusCost data_totals_;
};

}  // namespace keygraphs::iolus
